package gsbl

import (
	"archive/zip"
	"bytes"
	"fmt"
	"sort"

	"lattice/internal/admit"
	"lattice/internal/metasched"
	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// BatchStatus summarizes a batch's progress.
type BatchStatus struct {
	ID        string
	Total     int
	Completed int
	Failed    int
	Pending   int
	Running   int
	Done      bool
	CreatedAt sim.Time
	DoneAt    sim.Time
}

// Batch tracks one portal submission through the grid.
type Batch struct {
	ID         string
	Submission workload.Submission
	// Origin labels the path the submission arrived through: "service",
	// "portal", "core", or "<run>/<stage>" for a workflow stage batch.
	Origin    string
	Jobs      []*metasched.GridJob
	CreatedAt sim.Time
	DoneAt    sim.Time
	done      bool
	// onDone fires once when the batch reaches its terminal state;
	// the workflow engine uses it to advance the stage graph.
	onDone func(BatchStatus)
}

// Service is the grid-services facade: it validates submissions,
// expands them into grid jobs via the meta-scheduler, tracks batches,
// notifies users, and packages results.
type Service struct {
	eng     *sim.Engine
	sched   *metasched.Scheduler
	mailer  *Mailer
	rng     *sim.RNG
	batches map[string]*Batch
	nextID  int
	// idPrefix qualifies batch IDs ("shard0-batch-000001") so a
	// cluster front router can attribute an ID to its coordinator
	// shard; empty for single-coordinator deployments.
	idPrefix string
	obs      *obs.Obs
	durable  Durability

	// Serialized front-door state (see ingest.go).
	ingest         IngestConfig
	ingestFree     sim.Time
	ingestDepth    int
	ingestErrs     []error
	ingestInsCache *ingestIns

	// Admission-control state (see admitpath.go). admit nil means the
	// overload-protection layer is off and the ingest queue is FIFO.
	admit          *admit.Controller
	admitServing   bool
	admitBusyUntil sim.Time
	shedQuota      int
	shedOverload   int
}

// Durability is the write-ahead-log hook for submissions entering the
// coordinator. The submission is recorded after validation and before
// any scheduling side effect, so a recovered run can re-inject it and
// regenerate everything downstream. QueuedSubmission is the same
// contract for the serialized ingest path: the record marks an
// *enqueue* — recovery re-enqueues it and re-execution regenerates
// the drain-time scheduling.
type Durability interface {
	Submission(at sim.Time, origin string, sub workload.Submission)
	QueuedSubmission(at sim.Time, origin string, sub workload.Submission)
}

// SetDurable installs the durability hook (nil disables it).
func (s *Service) SetDurable(d Durability) { s.durable = d }

// SetIDPrefix qualifies every subsequently created batch ID with a
// prefix. Call before the first submission; existing IDs are not
// rewritten.
func (s *Service) SetIDPrefix(p string) { s.idPrefix = p }

// SetObs wires the facade to an observability hub: validation becomes
// a journal event and each batch gets a root trace span covering
// submission to last terminal job.
func (s *Service) SetObs(o *obs.Obs) { s.obs = o }

// NewService wires the facade.
func NewService(eng *sim.Engine, sched *metasched.Scheduler, mailer *Mailer, rng *sim.RNG) *Service {
	return &Service{
		eng:     eng,
		sched:   sched,
		mailer:  mailer,
		rng:     rng,
		batches: make(map[string]*Batch),
	}
}

// Validate runs the GARLI validation pre-pass applied "before any jobs
// are scheduled … to ensure there are no problems with the data files
// and parameters specified".
func (s *Service) Validate(sub *workload.Submission) error {
	return sub.Validate()
}

// SubmitBatch validates and schedules a submission. On completion of
// every replicate the user is emailed and results become downloadable.
func (s *Service) SubmitBatch(sub workload.Submission) (*Batch, error) {
	return s.SubmitBatchOrigin(sub, "service")
}

// SubmitBatchOrigin is SubmitBatch with an explicit origin label
// ("service", "portal", "core") naming the path the submission
// arrived through. The durability layer records the label so recovery
// can re-inject each submission through the same path — paths differ
// in bookkeeping (portal ownership) and RNG side effects (core's
// reference fork).
func (s *Service) SubmitBatchOrigin(sub workload.Submission, origin string) (*Batch, error) {
	if err := s.Validate(&sub); err != nil {
		return nil, err
	}
	if s.durable != nil {
		// Record the input exactly as it arrived (before BatchTag
		// assignment mutates it).
		s.durable.Submission(s.eng.Now(), origin, sub)
	}
	return s.submit(sub, origin,
		fmt.Sprintf("%d replicates for %s", sub.Replicates, sub.UserEmail), nil)
}

// SubmitBatchDerived schedules a submission derived from an input the
// durability layer already witnessed — a workflow stage batch. It is
// deliberately *not* recorded as a WAL input: crash recovery
// re-injects the workflow itself, and deterministic re-execution
// regenerates every stage submission; recording both would
// double-inject on replay. The origin labels the deriving context
// ("<run>/<stage>") through the journal, and onDone fires once when
// the batch reaches its terminal state.
func (s *Service) SubmitBatchDerived(sub workload.Submission, origin string, onDone func(BatchStatus)) (*Batch, error) {
	if err := s.Validate(&sub); err != nil {
		return nil, err
	}
	return s.submit(sub, origin,
		fmt.Sprintf("%d replicates for %s via %s", sub.Replicates, sub.UserEmail, origin), onDone)
}

// submit is the shared accept path: batch bookkeeping, trace root,
// validation journal event, scheduler expansion, submission mail.
func (s *Service) submit(sub workload.Submission, origin, validateDetail string, onDone func(BatchStatus)) (*Batch, error) {
	s.nextID++
	b := &Batch{
		ID:         fmt.Sprintf("%sbatch-%06d", s.idPrefix, s.nextID),
		Submission: sub,
		Origin:     origin,
		CreatedAt:  s.eng.Now(),
		onDone:     onDone,
	}
	// Root the batch's trace before any job span, and journal the
	// validation pre-pass (batch-level event, no job ID).
	s.obs.Root(b.ID)
	s.obs.Record(b.ID, "", obs.StageValidate, "", validateDetail)
	sub.BatchTag = b.ID
	jobs, err := s.sched.SubmitBatch(&sub, s.rng, func(j *metasched.GridJob) { s.jobDone(b, j) })
	if err != nil {
		return nil, err
	}
	b.Jobs = jobs
	s.batches[b.ID] = b
	s.mailer.Send(s.eng.Now(), sub.UserEmail,
		fmt.Sprintf("[Lattice] %s submitted", b.ID),
		fmt.Sprintf("Your submission of %d replicates was accepted as %s (%d grid jobs).",
			sub.Replicates, b.ID, len(jobs)))
	return b, nil
}

// RunStage implements the workflow engine's Runner contract
// (internal/dag): a ready stage becomes an ordinary derived batch
// whose origin names the workflow run and stage, and the stage
// advances when the batch is terminal.
func (s *Service) RunStage(runID, stageID string, sub workload.Submission, done func(completed, failed int)) (string, error) {
	b, err := s.SubmitBatchDerived(sub, runID+"/"+stageID, func(st BatchStatus) {
		done(st.Completed, st.Failed)
	})
	if err != nil {
		return "", err
	}
	return b.ID, nil
}

// jobDone handles a terminal job state and fires batch-level events.
func (s *Service) jobDone(b *Batch, j *metasched.GridJob) {
	if j.Status == metasched.StatusFailed {
		s.mailer.Send(s.eng.Now(), b.Submission.UserEmail,
			fmt.Sprintf("[Lattice] job failure in %s", b.ID),
			fmt.Sprintf("Job %s failed: %s", j.Desc.JobID, j.FailReason))
	}
	st := s.status(b)
	if st.Done && !b.done {
		b.done = true
		b.DoneAt = s.eng.Now()
		s.obs.Root(b.ID).End()
		s.mailer.Send(s.eng.Now(), b.Submission.UserEmail,
			fmt.Sprintf("[Lattice] %s complete", b.ID),
			fmt.Sprintf("All %d jobs finished (%d completed, %d failed). Results are ready for download.",
				st.Total, st.Completed, st.Failed))
		if b.onDone != nil {
			b.onDone(st)
		}
	}
}

// Batch returns a batch by ID.
func (s *Service) Batch(id string) (*Batch, bool) {
	b, ok := s.batches[id]
	return b, ok
}

// Batches lists batch IDs in creation order.
func (s *Service) Batches() []string {
	ids := make([]string, 0, len(s.batches))
	for id := range s.batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Status reports batch progress.
func (s *Service) Status(id string) (BatchStatus, error) {
	b, ok := s.batches[id]
	if !ok {
		return BatchStatus{}, fmt.Errorf("gsbl: unknown batch %s", id)
	}
	return s.status(b), nil
}

func (s *Service) status(b *Batch) BatchStatus {
	st := BatchStatus{ID: b.ID, Total: len(b.Jobs), CreatedAt: b.CreatedAt, DoneAt: b.DoneAt}
	for _, j := range b.Jobs {
		switch j.Status {
		case metasched.StatusCompleted:
			st.Completed++
		case metasched.StatusFailed:
			st.Failed++
		case metasched.StatusRunning:
			st.Running++
		default:
			st.Pending++
		}
	}
	st.Done = st.Completed+st.Failed == st.Total
	return st
}

// CancelBatch cancels every non-terminal job of a batch.
func (s *Service) CancelBatch(id string) error {
	b, ok := s.batches[id]
	if !ok {
		return fmt.Errorf("gsbl: unknown batch %s", id)
	}
	for _, j := range b.Jobs {
		s.sched.Cancel(j.Desc.JobID)
	}
	return nil
}

// ResultsZip packages a finished batch's outputs into one zip archive,
// the post-processing step the portal serves for download. Each job
// contributes its result files; a batch-level summary is included.
func (s *Service) ResultsZip(id string) ([]byte, error) {
	b, ok := s.batches[id]
	if !ok {
		return nil, fmt.Errorf("gsbl: unknown batch %s", id)
	}
	st := s.status(b)
	if !st.Done {
		return nil, fmt.Errorf("gsbl: batch %s still has %d jobs outstanding", id, st.Pending+st.Running)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	summary := &bytes.Buffer{}
	fmt.Fprintf(summary, "batch: %s\nreplicates: %d\njobs: %d\ncompleted: %d\nfailed: %d\n",
		b.ID, b.Submission.Replicates, st.Total, st.Completed, st.Failed)
	fmt.Fprintf(summary, "submitted_at: %.0f\nfinished_at: %.0f\n",
		float64(b.CreatedAt), float64(b.DoneAt))
	for _, j := range b.Jobs {
		name := j.Desc.JobID
		if j.Status == metasched.StatusCompleted {
			w, err := zw.Create(name + ".best.tre")
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Fprintf(w, "# best tree for %s (searchreps=%d) from resource %s\n",
				name, j.Spec.SearchReps, j.Resource); err != nil {
				return nil, err
			}
			lw, err := zw.Create(name + ".screen.log")
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Fprintf(lw, "job %s\nresource %s\nattempts %d\nwall_seconds %.0f\n",
				name, j.Resource, j.Attempts, float64(j.CompletedAt.Sub(j.StartedAt))); err != nil {
				return nil, err
			}
		} else {
			w, err := zw.Create(name + ".FAILED")
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Fprintf(w, "%s\n", j.FailReason); err != nil {
				return nil, err
			}
		}
	}
	w, err := zw.Create("batch_summary.txt")
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(summary.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
