package gsbl

import (
	"strings"
	"testing"

	"lattice/internal/obs"
	"lattice/internal/sim"
)

// TestBatchOriginPropagation follows a workflow stage's identity down
// the stack: RunStage stamps Batch.Origin as "<run>/<stage>", the
// validation journal event names the origin, and the batch ID the
// stage received threads through the meta-scheduler's submit, place
// and dispatch events all the way to terminal completion.
func TestBatchOriginPropagation(t *testing.T) {
	eng, svc, _ := testService(t)
	o := obs.New(eng)
	svc.SetObs(o)
	svc.sched.SetObs(o)

	fired, gotCompleted, gotFailed := 0, -1, -1
	id, err := svc.RunStage("wf-000001", "search", smallSubmission(3), func(c, f int) {
		fired++
		gotCompleted, gotFailed = c, f
	})
	if err != nil {
		t.Fatal(err)
	}
	b, ok := svc.Batch(id)
	if !ok {
		t.Fatalf("stage batch %s not registered", id)
	}
	if b.Origin != "wf-000001/search" {
		t.Fatalf("Batch.Origin = %q, want wf-000001/search", b.Origin)
	}

	eng.RunUntil(sim.Time(30 * sim.Day))
	if fired != 1 || gotCompleted != 3 || gotFailed != 0 {
		t.Fatalf("stage completion = (fired=%d, completed=%d, failed=%d), want (1, 3, 0)",
			fired, gotCompleted, gotFailed)
	}

	perStage := make(map[obs.Stage]int)
	for _, ev := range o.Journal.Events() {
		if ev.Batch != id {
			continue
		}
		perStage[ev.Stage]++
		if ev.Stage == obs.StageValidate && !strings.Contains(ev.Detail, "via wf-000001/search") {
			t.Errorf("validate detail %q does not name the stage origin", ev.Detail)
		}
	}
	if perStage[obs.StageValidate] != 1 {
		t.Errorf("validate events = %d, want 1", perStage[obs.StageValidate])
	}
	for _, st := range []obs.Stage{obs.StageSubmit, obs.StagePlace, obs.StageDispatch, obs.StageComplete} {
		if perStage[st] < 3 {
			t.Errorf("%s events under batch %s = %d, want >= 3 (one per replicate)",
				st, id, perStage[st])
		}
	}
	if perStage[obs.StageComplete] != 3 {
		t.Errorf("complete events = %d, want exactly 3", perStage[obs.StageComplete])
	}
}

// TestDirectOriginKeepsFlatDetail pins the pre-workflow validate
// detail byte-for-byte: journal digests of existing scenarios depend
// on it, so only derived stage batches may use the "via" form.
func TestDirectOriginKeepsFlatDetail(t *testing.T) {
	eng, svc, _ := testService(t)
	o := obs.New(eng)
	svc.SetObs(o)

	b, err := svc.SubmitBatchOrigin(smallSubmission(2), "service")
	if err != nil {
		t.Fatal(err)
	}
	if b.Origin != "service" {
		t.Fatalf("Batch.Origin = %q, want service", b.Origin)
	}
	_ = eng
	for _, ev := range o.Journal.Events() {
		if ev.Batch == b.ID && ev.Stage == obs.StageValidate {
			if ev.Detail != "2 replicates for researcher@example.edu" {
				t.Fatalf("direct validate detail = %q; must stay byte-identical to the flat form", ev.Detail)
			}
			return
		}
	}
	t.Fatal("no validate event recorded for direct batch")
}
