// Package gsbl is the Grid Services Base Library layer: the high-level
// procedural API for grid services the paper's group published as
// [32]. It owns what sits between the web portal and the meta-
// scheduler — grid application descriptions (from which the portal
// generates its forms), batch lifecycle management (submit, monitor,
// cancel), result post-processing into a single downloadable zip, and
// email notification of "important status updates (such as job
// completion or job failure)".
package gsbl

import (
	"encoding/xml"
	"fmt"

	"lattice/internal/sim"
)

// Param describes one form parameter of a grid application.
type Param struct {
	Name     string   `xml:"name,attr"`
	Type     string   `xml:"type,attr"` // "int", "float", "choice", "file", "text"
	Label    string   `xml:"label"`
	Default  string   `xml:"default,omitempty"`
	Options  []string `xml:"option,omitempty"`
	Required bool     `xml:"required,attr"`
	Help     string   `xml:"help,omitempty"`
}

// AppDescription is the XML description of a grid application from
// which a web interface is generated ("software that takes an XML
// description of grid application arguments and options and
// automatically generates a … web interface for that application").
type AppDescription struct {
	XMLName xml.Name `xml:"gridApplication"`
	Name    string   `xml:"name,attr"`
	Version string   `xml:"version,attr"`
	Title   string   `xml:"title"`
	Params  []Param  `xml:"parameter"`
}

// MarshalXML renders the description document.
func (a *AppDescription) XML() ([]byte, error) {
	return xml.MarshalIndent(a, "", "  ")
}

// ParseAppDescription reads an XML application description.
func ParseAppDescription(data []byte) (*AppDescription, error) {
	var a AppDescription
	if err := xml.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("gsbl: parsing application description: %w", err)
	}
	if a.Name == "" {
		return nil, fmt.Errorf("gsbl: application description has no name")
	}
	return &a, nil
}

// Param lookup by name.
func (a *AppDescription) Param(name string) (*Param, bool) {
	for i := range a.Params {
		if a.Params[i].Name == name {
			return &a.Params[i], true
		}
	}
	return nil, false
}

// GarliApp returns the GARLI grid service description mirroring the
// portal form in the paper's Figure 1.
func GarliApp() *AppDescription {
	return &AppDescription{
		Name:    "garli",
		Version: "2.0",
		Title:   "GARLI — Genetic Algorithm for Rapid Likelihood Inference",
		Params: []Param{
			{Name: "datafile", Type: "file", Label: "Sequence data file (FASTA or PHYLIP)", Required: true,
				Help: "Aligned sequence data; all rows must be the same length."},
			{Name: "datatype", Type: "choice", Label: "Data type", Default: "nucleotide",
				Options: []string{"nucleotide", "aminoacid", "codon"}, Required: true},
			{Name: "ratematrix", Type: "choice", Label: "Substitution model", Default: "GTR",
				Options: []string{"JC69", "K80", "HKY85", "GTR", "poisson", "empirical", "GY94"}, Required: true},
			{Name: "ratehetmodel", Type: "choice", Label: "Rate heterogeneity", Default: "gamma",
				Options: []string{"none", "gamma", "gamma+inv"}, Required: true},
			{Name: "numratecats", Type: "int", Label: "Number of rate categories", Default: "4"},
			{Name: "searchreps", Type: "int", Label: "Search replicates per job", Default: "1"},
			{Name: "streefname", Type: "choice", Label: "Starting tree", Default: "stepwise",
				Options: []string{"random", "stepwise", "user"}},
			{Name: "attachmentspertaxon", Type: "int", Label: "Attachments per taxon", Default: "25"},
			{Name: "replicates", Type: "int", Label: "Job replicates (1-2000)", Default: "1", Required: true,
				Help: "Each replicate runs in parallel on a separate grid processor."},
			{Name: "bootstrap", Type: "choice", Label: "Bootstrap resampling", Default: "no",
				Options: []string{"no", "yes"}},
			{Name: "email", Type: "text", Label: "Email address for notifications", Required: true},
		},
	}
}

// Notification is one outbound email.
type Notification struct {
	At      sim.Time
	To      string
	Subject string
	Body    string
}

// Mailer collects outbound notifications (the simulation's SMTP).
type Mailer struct {
	sent []Notification
}

// Send records a notification.
func (m *Mailer) Send(at sim.Time, to, subject, body string) {
	m.sent = append(m.sent, Notification{At: at, To: to, Subject: subject, Body: body})
}

// Sent returns all notifications in order.
func (m *Mailer) Sent() []Notification { return m.sent }

// SentTo returns notifications for one recipient.
func (m *Mailer) SentTo(to string) []Notification {
	var out []Notification
	for _, n := range m.sent {
		if n.To == to {
			out = append(out, n)
		}
	}
	return out
}
