package gsbl

import (
	"fmt"

	"lattice/internal/admit"
	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// This file is the admission-controlled variant of the ingest path
// (see ingest.go): with a controller installed, the FIFO front-door
// queue becomes a weighted fair-share queue with per-user quotas and
// deterministic load shedding. Everything still runs on the virtual
// clock inside engine callbacks, so same-seed runs shed the same
// submissions at the same instants.

// SetAdmit installs the overload-protection layer in front of the
// ingest queue. The ingest model must already be enabled — its cost
// function prices each submission's front-door occupancy, which is the
// currency the fair-share queue and the wait budget meter. A disabled
// config is a no-op. Call before the first submission.
func (s *Service) SetAdmit(cfg admit.Config) error {
	if !cfg.Enabled() {
		return nil
	}
	if !s.ingest.Enabled() {
		return fmt.Errorf("gsbl: admission control requires the ingest model (SetIngest first)")
	}
	ctl, err := admit.NewController(cfg)
	if err != nil {
		return err
	}
	s.admit = ctl
	return nil
}

// AdmitActive reports whether the admission controller is installed.
func (s *Service) AdmitActive() bool { return s.admit != nil }

// Sheds reports how many submissions the admission layer rejected,
// split by reason. Together with completed and failed batches these
// account every submission's single terminal:
// submissions == batches + quota + overload.
func (s *Service) Sheds() (quota, overload int) { return s.shedQuota, s.shedOverload }

// admitItem carries a queued submission's context through the
// fair-share queue.
type admitItem struct {
	sub        workload.Submission
	origin     string
	arrived    sim.Time
	onAccepted func(*Batch, error)
}

// admitEnqueue is the admission-controlled accept path: charge the
// user's quota, tag the entry into the fair-share queue, shed from the
// low-share end while the queue exceeds its bounds, and start serving
// if the door is idle. The durable record was already written by the
// caller — sheds are decisions, not inputs, so recovery re-enqueues
// the submission and deterministically re-sheds it.
func (s *Service) admitEnqueue(sub workload.Submission, origin string, onAccepted func(*Batch, error)) {
	now := s.eng.Now()
	if rej := s.admit.TakeQuota(sub.UserEmail, float64(sub.Replicates), now); rej != nil {
		s.shed(&sub, origin, rej, onAccepted)
		return
	}
	item := &admitItem{sub: sub, origin: origin, arrived: now, onAccepted: onAccepted}
	s.admit.Push(sub.UserEmail, s.ingest.cost(&sub).Seconds(), item)
	s.ingestDepth++
	for {
		victim, rej := s.admit.Overflow(s.admitBusySeconds(now))
		if victim == nil {
			break
		}
		v := victim.Payload.(*admitItem)
		s.ingestDepth--
		s.shed(&v.sub, v.origin, rej, v.onAccepted)
	}
	if ins := s.ingestInstruments(); ins != nil {
		ins.depth.Set(float64(s.ingestDepth))
	}
	s.admitServe(now)
}

// admitBusySeconds is the remaining front-door occupancy of the entry
// in service, the fixed part of the projected wait.
func (s *Service) admitBusySeconds(now sim.Time) float64 {
	if !s.admitServing || s.admitBusyUntil <= now {
		return 0
	}
	return s.admitBusyUntil.Sub(now).Seconds()
}

// admitServe starts serving the lowest-finish-tag entry when the door
// is idle; each completion expands the submission and chains to the
// next entry.
func (s *Service) admitServe(now sim.Time) {
	if s.admitServing {
		return
	}
	e := s.admit.Pop()
	if e == nil {
		return
	}
	item := e.Payload.(*admitItem)
	s.admitServing = true
	done := now.Add(sim.Duration(e.Cost))
	s.admitBusyUntil = done
	s.eng.ScheduleAt(done, func() {
		s.admitServing = false
		s.ingestDepth--
		if ins := s.ingestInstruments(); ins != nil {
			ins.depth.Set(float64(s.ingestDepth))
			ins.wait.Observe(float64(s.eng.Now().Sub(item.arrived)))
			ins.accepted.Inc()
		}
		b, err := s.submit(item.sub, item.origin, ingestDetail(&item.sub), nil)
		if err != nil {
			s.noteIngestErr(err)
		}
		if item.onAccepted != nil {
			item.onAccepted(b, err)
		}
		s.admitServe(s.eng.Now())
	})
}

// shed accounts one rejected submission: exactly one StageShed journal
// event (the submission's terminal), a per-reason counter, and the
// caller's callback fired with the typed *admit.Rejection so portals
// can answer 429 with Retry-After.
func (s *Service) shed(sub *workload.Submission, origin string, rej *admit.Rejection, onAccepted func(*Batch, error)) {
	var counter string
	switch rej.Reason {
	case admit.ReasonQuota:
		s.shedQuota++
		counter = "lattice_admit_shed_quota_total"
	default:
		s.shedOverload++
		counter = "lattice_admit_shed_overload_total"
	}
	s.obs.Record("", "", obs.StageShed, "ingest",
		fmt.Sprintf("%s: %d replicates for %s via %s; retry after %.0fs",
			rej.Reason, sub.Replicates, sub.UserEmail, origin, rej.RetryAfter.Seconds()))
	s.obs.Counter(counter, "Submissions rejected by the admission layer").Inc()
	if onAccepted != nil {
		onAccepted(nil, rej)
	}
}
