package gsbl

import (
	"fmt"

	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// IngestConfig models the coordinator's front-door throughput: the
// paper's submission point is one process that validates, stages and
// registers every batch serially, so at portal scale the accept path
// itself becomes the bottleneck long before the federation runs out
// of CPUs. Each accepted submission occupies the coordinator for
// PerSubmissionSeconds plus PerReplicateSeconds per replicate of
// virtual time; submissions arriving while the coordinator is busy
// queue FIFO. The zero value disables the model entirely — submissions
// schedule synchronously on arrival, the pre-scale-out behaviour,
// bit-identical to builds without the ingest path.
type IngestConfig struct {
	// PerSubmissionSeconds is the fixed virtual cost of accepting one
	// submission (validation, staging, batch registration).
	PerSubmissionSeconds float64
	// PerReplicateSeconds is the marginal virtual cost per replicate
	// (input fan-out, per-job registration).
	PerReplicateSeconds float64
}

// Enabled reports whether the ingest model is active.
func (c IngestConfig) Enabled() bool {
	return c.PerSubmissionSeconds > 0 || c.PerReplicateSeconds > 0
}

// cost returns the coordinator occupancy of one submission.
func (c IngestConfig) cost(sub *workload.Submission) sim.Duration {
	return sim.Duration(c.PerSubmissionSeconds + c.PerReplicateSeconds*float64(sub.Replicates))
}

// ingestIns caches the ingest instrument handles.
type ingestIns struct {
	depth    *obs.Gauge
	wait     *obs.Histogram
	accepted *obs.Counter
}

// SetIngest installs the front-door throughput model. Call before the
// first submission; changing the model mid-run would break replay
// determinism.
func (s *Service) SetIngest(cfg IngestConfig) { s.ingest = cfg }

// IngestDepth reports how many accepted submissions are queued behind
// the coordinator's front door right now.
func (s *Service) IngestDepth() int { return s.ingestDepth }

// IngestErrors returns deferred scheduling failures of drained
// submissions (most recent last); empty means every drained
// submission expanded cleanly.
func (s *Service) IngestErrors() []error { return s.ingestErrs }

// EnqueueBatchOrigin is the scale-out accept path: the submission is
// validated and durably recorded immediately (the enqueue is the
// input — a crash loses nothing that was accepted), then expanded
// into grid jobs when the serialized coordinator front door reaches
// it on the virtual clock. onAccepted, when non-nil, fires at drain
// time with the created batch or the deferred scheduling error. With
// the ingest model disabled this is SubmitBatchOrigin plus a
// synchronous callback.
func (s *Service) EnqueueBatchOrigin(sub workload.Submission, origin string, onAccepted func(*Batch, error)) error {
	if !s.ingest.Enabled() {
		b, err := s.SubmitBatchOrigin(sub, origin)
		if err != nil {
			return err
		}
		if onAccepted != nil {
			onAccepted(b, nil)
		}
		return nil
	}
	if err := s.Validate(&sub); err != nil {
		return err
	}
	if s.durable != nil {
		// The enqueue is the durable input: recovery re-enqueues it at
		// this virtual time and deterministic re-execution regenerates
		// the drain, the batch, and everything downstream. Recorded
		// before the admission decision so a shed submission replays
		// and deterministically re-sheds.
		s.durable.QueuedSubmission(s.eng.Now(), origin, sub)
	}
	if s.admit != nil {
		s.admitEnqueue(sub, origin, onAccepted)
		return nil
	}
	now := s.eng.Now()
	start := now
	if s.ingestFree > start {
		start = s.ingestFree
	}
	done := start.Add(s.ingest.cost(&sub))
	s.ingestFree = done
	s.ingestDepth++
	ins := s.ingestInstruments()
	if ins != nil {
		ins.depth.Set(float64(s.ingestDepth))
		ins.accepted.Inc()
	}
	s.eng.ScheduleAt(done, func() {
		s.ingestDepth--
		if ins != nil {
			ins.depth.Set(float64(s.ingestDepth))
			ins.wait.Observe(float64(s.eng.Now().Sub(now)))
		}
		b, err := s.submit(sub, origin, ingestDetail(&sub), nil)
		if err != nil {
			s.noteIngestErr(err)
		}
		if onAccepted != nil {
			onAccepted(b, err)
		}
	})
	return nil
}

func ingestDetail(sub *workload.Submission) string {
	return fmt.Sprintf("%d replicates for %s (ingest-drained)", sub.Replicates, sub.UserEmail)
}

// ingestInstruments lazily builds the instrument handles once an obs
// hub is wired; nil (a no-op) before that.
func (s *Service) ingestInstruments() *ingestIns {
	if s.ingestInsCache != nil {
		return s.ingestInsCache
	}
	if s.obs == nil {
		return nil
	}
	s.ingestInsCache = &ingestIns{
		depth: s.obs.Gauge("lattice_gsbl_ingest_depth",
			"Accepted submissions queued behind the coordinator front door"),
		wait: s.obs.Histogram("lattice_gsbl_ingest_wait_seconds",
			"Virtual seconds from submission arrival to coordinator drain", nil),
		accepted: s.obs.Counter("lattice_gsbl_ingest_accepted_total",
			"Submissions accepted through the serialized ingest path"),
	}
	return s.ingestInsCache
}

// NoteIngestErr records an asynchronous accept failure on behalf of a
// caller with no request to fail — the cluster's scheduled arrivals
// fire inside engine callbacks and report through here.
func (s *Service) NoteIngestErr(err error) { s.noteIngestErr(err) }

// noteIngestErr records a deferred scheduling failure, keeping the
// most recent ones (the drain runs inside a simulation callback with
// no caller to return an error to).
func (s *Service) noteIngestErr(err error) {
	const keep = 32
	if len(s.ingestErrs) >= keep {
		s.ingestErrs = s.ingestErrs[1:]
	}
	s.ingestErrs = append(s.ingestErrs, err)
	// The drain runs with no caller to return an error to: surface the
	// failure as a batch-level journal event (empty batch/job — the
	// batch was never created) and a counter, so operators see it
	// without polling IngestErrors.
	s.obs.Record("", "", obs.StageFail, "ingest", "deferred expansion failed: "+err.Error())
	s.obs.Counter("lattice_ingest_errors_total",
		"Deferred submission expansion failures at the ingest drain").Inc()
}
