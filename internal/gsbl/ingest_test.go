package gsbl

import (
	"testing"

	"lattice/internal/sim"
	"lattice/internal/workload"
)

// recordedInput is one durable input the fake hook saw.
type recordedInput struct {
	at     sim.Time
	origin string
	queued bool
	sub    workload.Submission
}

// fakeDurable captures durability-hook calls.
type fakeDurable struct{ inputs []recordedInput }

func (f *fakeDurable) Submission(at sim.Time, origin string, sub workload.Submission) {
	f.inputs = append(f.inputs, recordedInput{at: at, origin: origin, sub: sub})
}

func (f *fakeDurable) QueuedSubmission(at sim.Time, origin string, sub workload.Submission) {
	f.inputs = append(f.inputs, recordedInput{at: at, origin: origin, queued: true, sub: sub})
}

// TestIngestDisabledIsSynchronous checks the zero-value config takes
// the pre-scale-out path: the submission schedules on arrival and the
// durable record is a plain (non-queued) input.
func TestIngestDisabledIsSynchronous(t *testing.T) {
	_, svc, _ := testService(t)
	d := &fakeDurable{}
	svc.SetDurable(d)

	var got *Batch
	if err := svc.EnqueueBatchOrigin(smallSubmission(3), "shard0/core", func(b *Batch, err error) {
		if err != nil {
			t.Fatalf("onAccepted error: %v", err)
		}
		got = b
	}); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("disabled ingest did not accept synchronously")
	}
	if len(got.Jobs) != 3 {
		t.Fatalf("batch has %d jobs, want 3", len(got.Jobs))
	}
	if len(d.inputs) != 1 || d.inputs[0].queued {
		t.Fatalf("durable record wrong: %+v", d.inputs)
	}
}

// TestIngestSerializesSubmissions checks the throughput model: each
// submission occupies the front door for its virtual cost, arrivals
// while busy queue FIFO, the depth tracks the backlog, and every
// enqueue is durably recorded at arrival with the Queued mark.
func TestIngestSerializesSubmissions(t *testing.T) {
	eng, svc, _ := testService(t)
	d := &fakeDurable{}
	svc.SetDurable(d)
	svc.SetIngest(IngestConfig{PerSubmissionSeconds: 10, PerReplicateSeconds: 1})

	var acceptedAt []sim.Time
	onAccepted := func(b *Batch, err error) {
		if err != nil {
			t.Fatalf("deferred accept error: %v", err)
		}
		acceptedAt = append(acceptedAt, eng.Now())
	}
	// Three 2-replicate submissions at t=0: each costs 12 virtual
	// seconds, so drains land at 12, 24, 36.
	for i := 0; i < 3; i++ {
		sub := smallSubmission(2)
		if err := svc.EnqueueBatchOrigin(sub, "shard0/core", onAccepted); err != nil {
			t.Fatal(err)
		}
	}
	if svc.IngestDepth() != 3 {
		t.Fatalf("depth = %d after three enqueues, want 3", svc.IngestDepth())
	}
	if len(svc.Batches()) != 0 {
		t.Fatal("batches created before the front door drained")
	}
	eng.RunUntil(sim.Time(13))
	if svc.IngestDepth() != 2 {
		t.Fatalf("depth = %d at t=13, want 2", svc.IngestDepth())
	}
	eng.RunUntil(sim.Time(100))
	if svc.IngestDepth() != 0 {
		t.Fatalf("depth = %d after drain, want 0", svc.IngestDepth())
	}
	if len(acceptedAt) != 3 {
		t.Fatalf("%d accepts, want 3", len(acceptedAt))
	}
	wantDrain := []sim.Time{12, 24, 36}
	for i, at := range acceptedAt {
		if at != wantDrain[i] {
			t.Errorf("accept %d at t=%v, want %v", i, at, wantDrain[i])
		}
	}
	if len(svc.Batches()) != 3 {
		t.Fatalf("%d batches after drain, want 3", len(svc.Batches()))
	}
	for i, in := range d.inputs {
		if !in.queued {
			t.Errorf("input %d not marked queued", i)
		}
		if in.at != 0 {
			t.Errorf("input %d recorded at t=%v, want arrival time 0", i, in.at)
		}
		if in.origin != "shard0/core" {
			t.Errorf("input %d origin %q", i, in.origin)
		}
	}
	if errs := svc.IngestErrors(); len(errs) != 0 {
		t.Fatalf("unexpected ingest errors: %v", errs)
	}
}

// TestIngestValidationSynchronous checks a bad submission is rejected
// at enqueue time, before any durable record or queue state.
func TestIngestValidationSynchronous(t *testing.T) {
	_, svc, _ := testService(t)
	d := &fakeDurable{}
	svc.SetDurable(d)
	svc.SetIngest(IngestConfig{PerSubmissionSeconds: 10})

	bad := smallSubmission(1)
	bad.UserEmail = ""
	if err := svc.EnqueueBatchOrigin(bad, "shard0/core", nil); err == nil {
		t.Fatal("invalid submission accepted")
	}
	if len(d.inputs) != 0 {
		t.Fatal("invalid submission durably recorded")
	}
	if svc.IngestDepth() != 0 {
		t.Fatal("invalid submission queued")
	}
}

// TestIngestIDPrefix checks prefixed batch identity survives the
// ingest path.
func TestIngestIDPrefix(t *testing.T) {
	eng, svc, _ := testService(t)
	svc.SetIDPrefix("shard2-")
	svc.SetIngest(IngestConfig{PerSubmissionSeconds: 5})
	var got *Batch
	if err := svc.EnqueueBatchOrigin(smallSubmission(1), "shard2/core", func(b *Batch, err error) {
		got = b
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(10))
	if got == nil || got.ID != "shard2-batch-000001" {
		t.Fatalf("batch ID = %+v, want shard2-batch-000001", got)
	}
}
