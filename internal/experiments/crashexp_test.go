package experiments

import "testing"

func TestCrashScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := CrashScenario(11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Kills < 3 {
		t.Errorf("schedule holds %d kills, want >= 3", r.Kills)
	}
	if r.Recoveries < r.Kills {
		t.Errorf("run recovered %d times for %d scheduled kills", r.Recoveries, r.Kills)
	}
	if !r.TornRecovered {
		t.Error("torn log tail was never detected and survived")
	}
	if !r.Conserved {
		t.Error("conservation violated: a job missed or repeated its terminal state across kills")
	}
	if !r.DigestsEqual {
		t.Error("crashed-and-recovered run diverged from the uninterrupted run (digest or exposition)")
	}
	base := r.Results["uninterrupted"]
	crashed := r.Results["crashed"]
	if base.Completed+base.Failed != base.Jobs || crashed.Completed+crashed.Failed != crashed.Jobs {
		t.Errorf("batches not terminal: uninterrupted %+v, crashed %+v", base, crashed)
	}
	if r.Digest == "" {
		t.Error("crashed run produced no journal digest")
	}
}
