package experiments

import "time"

// Clock abstracts the wall clock so experiment outputs (model build
// times in Fig2 and the forest-size ablation) are deterministic under
// test: the experiments' scientific content is seed-driven, and the
// only wall-clock reads left are these build-time measurements.
type Clock interface {
	Now() time.Time
}

// wallClock is the production clock.
type wallClock struct{}

//lint:allow determinism -- the clock seam itself; everything else reads through it
func (wallClock) Now() time.Time { return time.Now() }

// clock is the package's time source. Tests swap it with SetClock.
var clock Clock = wallClock{}

// SetClock replaces the experiment clock and returns a restore
// function, for deterministic build-time measurements in tests.
func SetClock(c Clock) (restore func()) {
	prev := clock
	clock = c
	return func() { clock = prev }
}
