package experiments

import (
	"strings"
	"testing"

	"lattice/internal/estimate"
)

// The experiment tests assert the *shape* of each paper artifact: who
// wins, by roughly what factor, and which effects are near zero. They
// are the executable form of EXPERIMENTS.md.

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(1, 150, 1000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Rank(estimate.FeatRateHet) > 1 {
		t.Errorf("RateHetModel ranked %d; paper has it first (89.7%%)", r.Rank(estimate.FeatRateHet))
	}
	dt := r.Rank(estimate.FeatDataType)
	if sm := r.Rank(estimate.FeatSubstModel); sm < dt {
		dt = sm
	}
	if dt > 3 {
		t.Errorf("data-type signal ranked %d; paper has DataType second (72.4%%)", dt)
	}
	for _, weak := range []string{estimate.FeatNumRateCats, estimate.FeatStartTree} {
		if r.Rank(weak) < 5 {
			t.Errorf("%s ranked %d; paper shows it near zero", weak, r.Rank(weak))
		}
	}
	if r.Stats.PctVarExplained < 80 {
		t.Errorf("variance explained %.1f%%; paper reports ~93%%", r.Stats.PctVarExplained)
	}
	if !strings.Contains(r.String(), "Figure 2") {
		t.Error("table header missing")
	}
}

func TestCrossValidationQuality(t *testing.T) {
	r, err := CrossValidation(2, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Metrics.Correlation < 0.8 {
		t.Errorf("CV correlation %.3f too weak to 'greatly improve scheduling effectiveness'", r.Metrics.Correlation)
	}
	if r.Metrics.WithinFactor2 < 0.5 {
		t.Errorf("only %.0f%% of predictions within 2×", 100*r.Metrics.WithinFactor2)
	}
}

func TestSchedulerRankingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := SchedulerRanking(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	naive := r.Results["naive"]
	full := r.Results["full"]
	if full.MeanTurnround >= naive.MeanTurnround {
		t.Errorf("full policy turnaround %.1f h not better than naive %.1f h",
			full.MeanTurnround.Hours(), naive.MeanTurnround.Hours())
	}
	if full.Completed < naive.Completed {
		t.Errorf("full policy completed %d < naive %d", full.Completed, naive.Completed)
	}
}

func TestStabilityGatingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := StabilityGating(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	ungated := r.Results["no gating (speed-aware)"]
	gated := r.Results["estimate gating (full)"]
	if gated.WastedCPUHours >= ungated.WastedCPUHours {
		t.Errorf("gating did not cut waste: %.0f vs %.0f CPU-h",
			gated.WastedCPUHours, ungated.WastedCPUHours)
	}
	if gated.Completed < ungated.Completed {
		t.Errorf("gating completed fewer jobs: %d vs %d", gated.Completed, ungated.Completed)
	}
}

func TestSchedulingEffectShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := SchedulingEffect(5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	blind := r.Results["no estimates"]
	informed := r.Results["random-forest estimates"]
	if informed.WastedCPUHours > blind.WastedCPUHours {
		t.Errorf("estimates increased waste: %.0f vs %.0f CPU-h",
			informed.WastedCPUHours, blind.WastedCPUHours)
	}
}

func TestSpeedCalibrationShape(t *testing.T) {
	r, err := SpeedCalibration(6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	// Homogeneous clusters must calibrate within a few percent; the
	// heterogeneous pool within ~20%.
	if r.MaxRelError > 0.25 {
		t.Errorf("worst calibration error %.0f%%", 100*r.MaxRelError)
	}
}

func TestBoincDeadlinesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("desktop-grid simulation experiment")
	}
	r, err := BoincDeadlines(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.EstimateDriven >= r.Fixed {
		t.Errorf("estimate-driven deadlines did not cut batch latency: %.0f h vs %.0f h",
			r.EstimateDriven.Hours(), r.Fixed.Hours())
	}
}

func TestWorkFetchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("desktop-grid simulation experiment")
	}
	r, err := WorkFetch(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Informed >= r.Blind {
		t.Errorf("estimates did not reduce scheduler RPCs per result: %.2f vs %.2f",
			r.Informed, r.Blind)
	}
}

func TestReplicateBundlingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := ReplicateBundling(9)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.On >= r.Off {
		t.Errorf("bundling did not cut overhead fraction: %.2f vs %.2f", r.On, r.Off)
	}
	if r.Off < 0.05 {
		t.Errorf("unbundled overhead fraction %.2f implausibly low — experiment not exercising overhead", r.Off)
	}
}

func TestPortalScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := PortalScale(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if !(r.Grid < r.Cluster && r.Cluster < r.Single) {
		t.Errorf("scale ordering wrong: grid %.0f h, cluster %.0f h, single %.0f h",
			r.Grid.Hours(), r.Cluster.Hours(), r.Single.Hours())
	}
	if speedup := float64(r.Single) / float64(r.Grid); speedup < 50 {
		t.Errorf("grid speedup over single processor only %.0f×", speedup)
	}
}

func TestContinuousRetrainingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("model retraining experiment")
	}
	r, err := ContinuousRetraining(11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Retrained >= r.Frozen {
		t.Errorf("retraining did not reduce drift error: %.3f vs %.3f", r.Retrained, r.Frozen)
	}
}

func TestCheckpointAlternativeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := CheckpointAlternative(12)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.CyclingOverhead <= r.GatingWaste {
		t.Errorf("checkpoint cycling shows no extra overhead: %.1f vs %.1f CPU-h",
			r.CyclingOverhead, r.GatingWaste)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps")
	}
	mtry, err := AblationMtry(13, 150)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", mtry)
	size, err := AblationForestSize(14, 150)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", size)
	imp, err := AblationImportanceMethod(15, 150)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", imp)
	if len(imp.Rows) != 9 {
		t.Errorf("importance ablation has %d rows", len(imp.Rows))
	}
}

func TestSystemScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale federation simulation")
	}
	r, err := SystemScale(16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.BoincHosts+serviceCores(r) < 5000 {
		t.Errorf("nominal federation size %d below the paper's >5000 cores", r.BoincHosts+serviceCores(r))
	}
	if r.Platforms < 3 {
		t.Errorf("only %d platforms; the paper supports 3", r.Platforms)
	}
	// "In just a few months": the 15-CPU-year batch should land
	// within ~120 days.
	if r.FifteenCPUYears.Hours() > 120*24 {
		t.Errorf("15-CPU-year batch took %.0f days; paper did it in a few months", r.FifteenCPUYears.Hours()/24)
	}
	if r.FifteenCPUYears <= 0 {
		t.Error("batch never completed")
	}
}

// serviceCores approximates the non-BOINC core count of the scaled
// federation for the nominal-size assertion.
func serviceCores(r *SystemScaleResult) int { return r.TotalCores }
