package experiments

import (
	"fmt"
	"os"

	"lattice/internal/core"
	"lattice/internal/faults"
	"lattice/internal/gsbl"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/shard"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// The scale-out experiment reproduces the paper's motivating scale
// problem: one coordinator process accepts every submission serially,
// so at portal scale the front door saturates long before the
// federation runs out of CPUs. It pushes a large simulated user
// population (10^5 by default) through clusters of 1, 2, 4 and 8
// coordinator shards and records how makespan, throughput, queue
// depth and waiting times respond — plus the determinism and
// crash-locality evidence that makes sharding safe: same-seed twin
// runs must produce bit-identical per-shard journals at every shard
// count, and killing one shard mid-run must recover from that shard's
// WAL alone while matching an uninterrupted twin digest-for-digest.

// scaleCrashShard is the shard the crash variant kills.
const scaleCrashShard = 2

// scaleArrivalWindow is the virtual span over which the user
// population submits: all runs see identical per-user arrival times,
// so shard counts differ only in how the same offered load is split.
const scaleArrivalWindow = 6 * sim.Hour

// scaleFederation is the scale experiment's grid: sixteen identical
// PBS clusters, so every partition of the federation has the same
// aggregate capacity per shard and the measured effect is pure
// front-door serialization, not resource luck. The estimator is off
// (TrainingJobs 0): replicate-exact scheduling keeps jobs==users and
// the runs cheap at 10^5 submissions.
func scaleFederation(seed int64) core.Config {
	var res []core.ResourceSpec
	for i := 0; i < 16; i++ {
		res = append(res, core.ResourceSpec{
			Kind: "pbs", Name: fmt.Sprintf("pbs%02d", i),
			Nodes: 32, Speed: 2.0, MemMB: 8192,
		})
	}
	sched := metasched.DefaultConfig()
	// No replicate bundling: one user is one grid job, so conservation
	// counts are exact.
	sched.BundleTargetSeconds = 0
	cfg := core.Config{
		Seed:      seed,
		Scheduler: sched,
		Resources: res,
		// The coordinator front door: one virtual second of
		// validation/staging per submission plus a quarter second per
		// replicate. At 10^5 one-replicate users this is ~35 virtual
		// hours of serialized accept work for a single coordinator —
		// the bottleneck sharding exists to divide.
		Ingest: gsbl.IngestConfig{PerSubmissionSeconds: 1.0, PerReplicateSeconds: 0.25},
	}
	return cfg
}

// scaleSubmission is user i's workload: a single small GARLI
// replicate, cheap enough that the grid itself never saturates and
// the front door stays the measured bottleneck.
func scaleSubmission(i int, seed int64) workload.Submission {
	return workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "HKY85",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.6,
			NumTaxa: 12, SeqLength: 400, SearchReps: 1,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 8, Seed: seed,
		},
		Replicates: 1,
		UserEmail:  fmt.Sprintf("u%06d@scale.example.edu", i),
	}
}

// ScalePoint is one shard-count measurement of the scale experiment.
type ScalePoint struct {
	Shards    int
	Jobs      int
	Completed int
	Failed    int
	// MakespanHours is the virtual time from the first arrival until
	// the last batch finished, across all shards.
	MakespanHours float64
	// ThroughputPerHour is terminal jobs per virtual hour of makespan.
	ThroughputPerHour float64
	// MeanIngestWaitSeconds is the mean virtual time a submission
	// spent queued behind the coordinator front door.
	MeanIngestWaitSeconds float64
	// MeanPlaceWaitSeconds is the mean virtual time from grid-job
	// submission to dispatch.
	MeanPlaceWaitSeconds float64
	// PeakIngestDepth is the deepest front-door queue observed across
	// all shards, sampled hourly.
	PeakIngestDepth int
	// Conserved reports that every journaled job reached exactly one
	// terminal state and that job count matches the user count.
	Conserved bool
	// TwinMatch reports that a second same-seed run produced the
	// bit-identical cluster digest.
	TwinMatch bool
	// Digest is the cluster digest (folded per-shard journal digests).
	Digest string
}

// ScaleOutResult is the full scale experiment: the shard-count sweep
// plus the shard-local crash-recovery variant.
type ScaleOutResult struct {
	Users  int
	Points []ScalePoint
	// Monotonic reports that makespan strictly improved 1→2→4 shards.
	Monotonic bool

	// Crash variant (run at 4 shards with a hostile schedule aimed at
	// one shard's resources, plus a coordinator kill on that shard).
	CrashUsers int
	CrashShard int
	// CrashLocal reports that only the scheduled shard ever crashed
	// and recovery touched only that shard's WAL.
	CrashLocal bool
	// CrashRecoveries counts successful shard recoveries (≥1).
	CrashRecoveries int
	// CrashRecoveredInputs is how many durable inputs the recovered
	// shard replayed.
	CrashRecoveredInputs int
	// CrashConserved reports exactly-one-terminal across the crashed
	// cluster run.
	CrashConserved bool
	// CrashDigestsEqual reports that every shard's journal digest —
	// including the killed-and-recovered shard's — matches the
	// uninterrupted twin's.
	CrashDigestsEqual bool

	Rows [][]string
}

// scaleOutcome is one cluster run's collected evidence.
type scaleOutcome struct {
	jobs, completed, failed int
	makespan                sim.Duration
	ingestWaitMean          float64
	placeWaitMean           float64
	peakDepth               int
	conserved               bool
	digest                  string
	shardDigests            []string
	crashed                 map[int]bool
	recoveries              int
	recoveredInputs         int
}

// scaleStep advances every live shard to the next absolute one-hour
// boundary past the furthest shard clock. Absolute boundaries keep a
// recovered shard — which resumes mid-interval at its kill time — on
// the same observation grid as an uninterrupted twin.
func scaleStep(c *core.Cluster) {
	const step = sim.Hour
	var maxNow sim.Time
	for _, l := range c.Shards {
		if now := l.Engine.Now(); now > maxNow {
			maxNow = now
		}
	}
	k := int(float64(maxNow) / float64(step))
	c.RunUntil(sim.Time(sim.Duration(k+1) * step))
}

// scaleDone reports whether the cluster has delivered every scheduled
// arrival, drained every front-door queue, and finished every grid
// job.
func scaleDone(c *core.Cluster) bool {
	if c.PendingArrivals() != 0 {
		return false
	}
	for _, l := range c.Shards {
		if l.Service.IngestDepth() != 0 {
			return false
		}
		st := l.Scheduler.Stats()
		if st.Completed+st.Failed < st.Submitted {
			return false
		}
	}
	return true
}

// scaleRun pushes users through a cluster of the given shard count
// and collects the outcome. sch supplies per-shard fault schedules
// (nil: fault-free); with durableRoot set each shard writes its own
// WAL and a crashed shard is recovered in place; with disarm set,
// scheduled crashes are journaled but do not stop engines — the
// uninterrupted twin of a crash run.
func scaleRun(seed int64, users, shards int, sch func(k int) *faults.Schedule, durableRoot string, disarm bool) (*scaleOutcome, error) {
	c, err := core.NewCluster(core.ClusterConfig{
		Shards:      shards,
		Share:       shard.SharePartition,
		Base:        scaleFederation(seed),
		DurableRoot: durableRoot,
		ShardFaults: sch,
	})
	if err != nil {
		return nil, err
	}
	if disarm {
		for _, l := range c.Shards {
			if l.Faults != nil {
				l.Faults.SetCrashStops(false)
			}
		}
	}
	for i := 0; i < users; i++ {
		at := sim.Time(sim.Duration(i) * scaleArrivalWindow / sim.Duration(users))
		c.ScheduleSubmission(at, scaleSubmission(i, seed))
	}
	out := &scaleOutcome{crashed: map[int]bool{}}
	deadline := sim.Time(40 * sim.Day)
	for {
		scaleStep(c)
		for _, k := range c.CrashedShards() {
			out.crashed[k] = true
			rep, err := c.RecoverShard(k)
			if err != nil {
				return nil, err
			}
			out.recoveries++
			out.recoveredInputs += rep.Inputs
		}
		depth := 0
		for _, l := range c.Shards {
			depth += l.Service.IngestDepth()
		}
		if depth > out.peakDepth {
			out.peakDepth = depth
		}
		if scaleDone(c) {
			break
		}
		var maxNow sim.Time
		for _, l := range c.Shards {
			if now := l.Engine.Now(); now > maxNow {
				maxNow = now
			}
		}
		if maxNow >= deadline {
			return nil, fmt.Errorf("experiments: scale run (%d shards, %d users) not done after 40 virtual days", shards, users)
		}
	}
	for k, l := range c.Shards {
		if errs := l.Service.IngestErrors(); len(errs) > 0 {
			return nil, fmt.Errorf("experiments: shard %d deferred ingest error: %w", k, errs[0])
		}
		if err := l.DurableErr(); err != nil {
			return nil, fmt.Errorf("experiments: shard %d durable error: %w", k, err)
		}
	}

	// Terminal accounting and makespan across all shards.
	out.conserved = true
	var lastDone sim.Time
	for _, l := range c.Shards {
		st := l.Scheduler.Stats()
		out.jobs += st.Submitted
		out.completed += st.Completed
		out.failed += st.Failed
		for _, n := range l.Obs.Journal.TerminalCounts() {
			if n != 1 {
				out.conserved = false
			}
		}
		for _, id := range l.Service.Batches() {
			bst, err := l.Service.Status(id)
			if err != nil {
				return nil, err
			}
			if !bst.Done {
				return nil, fmt.Errorf("experiments: batch %s not done at collection", id)
			}
			if bst.DoneAt > lastDone {
				lastDone = bst.DoneAt
			}
		}
	}
	if out.jobs != users {
		out.conserved = false
	}
	out.makespan = lastDone.Sub(0)

	// Waiting-time means from the merged histograms.
	var ingestSum, placeSum float64
	var ingestN, placeN uint64
	for _, l := range c.Shards {
		for _, s := range l.Obs.Registry.Snapshot() {
			switch s.Name {
			case "lattice_gsbl_ingest_wait_seconds":
				ingestSum += s.Sum
				ingestN += s.Count
			case "lattice_sched_placement_wait_seconds":
				placeSum += s.Sum
				placeN += s.Count
			}
		}
	}
	if ingestN > 0 {
		out.ingestWaitMean = ingestSum / float64(ingestN)
	}
	if placeN > 0 {
		out.placeWaitMean = placeSum / float64(placeN)
	}
	out.shardDigests = c.ShardDigests()
	out.digest = c.Digest()
	if err := c.CloseDurable(); err != nil {
		return nil, err
	}
	return out, nil
}

// scaleCrashFaults is the crash variant's hostile schedule: outage,
// gatekeeper refusals and MDS staleness on three of the killed
// shard's own resources (shard 2 of 4 owns pbs02/06/10/14 under the
// static partition), plus a coordinator kill mid-window. Other shards
// run fault-free — the experiment's claim is that they never notice.
func scaleCrashFaults(k int) *faults.Schedule {
	if k != scaleCrashShard {
		return nil
	}
	return &faults.Schedule{
		Events: []faults.Event{
			{At: sim.Time(1 * sim.Hour), Kind: faults.KindOutage, Resource: "pbs02", Duration: 6 * sim.Hour},
			{At: sim.Time(30 * sim.Minute), Kind: faults.KindSubmitFail, Resource: "pbs06", Duration: 8 * sim.Hour, P: 0.5},
			{At: sim.Time(2 * sim.Hour), Kind: faults.KindMDSStale, Resource: "pbs10", Duration: 4 * sim.Hour},
		},
		CrashAt: []sim.Time{sim.Time(3 * sim.Hour)},
	}
}

// ScaleOutPoint runs one shard-count measurement (no twin) — the
// benchmark suite's per-point entry.
func ScaleOutPoint(seed int64, users, shards int) (ScalePoint, error) {
	o, err := scaleRun(seed, users, shards, nil, "", false)
	if err != nil {
		return ScalePoint{}, err
	}
	return scalePointOf(shards, o), nil
}

func scalePointOf(shards int, o *scaleOutcome) ScalePoint {
	p := ScalePoint{
		Shards:                shards,
		Jobs:                  o.jobs,
		Completed:             o.completed,
		Failed:                o.failed,
		MakespanHours:         o.makespan.Hours(),
		MeanIngestWaitSeconds: o.ingestWaitMean,
		MeanPlaceWaitSeconds:  o.placeWaitMean,
		PeakIngestDepth:       o.peakDepth,
		Conserved:             o.conserved,
		Digest:                o.digest,
	}
	if o.makespan > 0 {
		p.ThroughputPerHour = float64(o.completed+o.failed) / o.makespan.Hours()
	}
	return p
}

// ScaleOut runs the full scale experiment at the default population:
// 10^5 users swept over 1/2/4/8 shards with same-seed twins, plus the
// 4-shard crash variant at 2×10^4 users.
func ScaleOut(seed int64) (*ScaleOutResult, error) {
	return ScaleOutSized(seed, 100000, 20000)
}

// ScaleOutSized is ScaleOut with explicit population sizes.
func ScaleOutSized(seed int64, users, crashUsers int) (*ScaleOutResult, error) {
	r := &ScaleOutResult{Users: users, CrashUsers: crashUsers, CrashShard: scaleCrashShard}
	for _, n := range []int{1, 2, 4, 8} {
		first, err := scaleRun(seed, users, n, nil, "", false)
		if err != nil {
			return nil, err
		}
		twin, err := scaleRun(seed, users, n, nil, "", false)
		if err != nil {
			return nil, err
		}
		p := scalePointOf(n, first)
		p.TwinMatch = first.digest == twin.digest
		r.Points = append(r.Points, p)
	}
	r.Monotonic = len(r.Points) >= 3 &&
		r.Points[1].MakespanHours < r.Points[0].MakespanHours &&
		r.Points[2].MakespanHours < r.Points[1].MakespanHours

	// Crash variant: uninterrupted twin (crashes journaled, engines
	// never stopped), then the same seed with the kill armed and the
	// dead shard recovered from its own WAL.
	base, err := scaleRun(seed, crashUsers, 4, scaleCrashFaults, "", true)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "lattice-scale-*")
	if err != nil {
		return nil, err
	}
	//lint:allow errdrop -- scratch cleanup; the evidence is already collected
	defer os.RemoveAll(dir)
	crashed, err := scaleRun(seed, crashUsers, 4, scaleCrashFaults, dir, false)
	if err != nil {
		return nil, err
	}
	r.CrashLocal = len(crashed.crashed) == 1 && crashed.crashed[scaleCrashShard] && crashed.recoveries >= 1
	r.CrashRecoveries = crashed.recoveries
	r.CrashRecoveredInputs = crashed.recoveredInputs
	r.CrashConserved = crashed.conserved && base.conserved
	r.CrashDigestsEqual = len(crashed.shardDigests) == len(base.shardDigests)
	for k := range crashed.shardDigests {
		if r.CrashDigestsEqual && crashed.shardDigests[k] != base.shardDigests[k] {
			r.CrashDigestsEqual = false
		}
	}

	for _, p := range r.Points {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.Jobs),
			fmt.Sprintf("%.1f h", p.MakespanHours),
			fmt.Sprintf("%.0f", p.ThroughputPerHour),
			fmt.Sprintf("%.0f s", p.MeanIngestWaitSeconds),
			fmt.Sprintf("%.1f s", p.MeanPlaceWaitSeconds),
			fmt.Sprintf("%d", p.PeakIngestDepth),
			pass(p.Conserved),
			pass(p.TwinMatch),
		})
	}
	return r, nil
}

func (r *ScaleOutResult) String() string {
	s := fmt.Sprintf("Scale-out — %d users through 1/2/4/8 coordinator shards (twin runs per point)\n", r.Users)
	s += table([]string{"shards", "jobs", "makespan", "jobs/h", "ingest-wait", "place-wait", "peak-depth", "conserved", "twin"}, r.Rows)
	s += fmt.Sprintf("makespan strictly improves 1→2→4 shards: %s\n", pass(r.Monotonic))
	s += fmt.Sprintf("crash variant (%d users, 4 shards, kill shard %d): local recovery %s (%d recoveries, %d inputs replayed), conservation %s, all shard digests == uninterrupted twin %s\n",
		r.CrashUsers, r.CrashShard, pass(r.CrashLocal), r.CrashRecoveries, r.CrashRecoveredInputs,
		pass(r.CrashConserved), pass(r.CrashDigestsEqual))
	return s
}
