package experiments

import "testing"

// TestOverloadScenarioShape runs the full overload experiment and pins
// the claims it exists to prove: under a 10× demand spike every
// offered submission reaches exactly one accounted terminal (completed
// batch | failed batch | journaled shed), same-seed twin runs are
// digest-equal at 1 and 4 shards, goodput with shedding stays at ≥ 90%
// of the pre-spike rate, the circuit breakers trip on the mid-spike
// brownout, and the unprotected baseline's p99 front-door wait blows
// up by ≥ 10× while shedding nothing.
func TestOverloadScenarioShape(t *testing.T) {
	r, err := OverloadScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4}
	if len(r.Points) != len(want) {
		t.Fatalf("got %d protected points, want %d", len(r.Points), len(want))
	}
	for i, p := range r.Points {
		if p.Shards != want[i] || !p.Protected {
			t.Fatalf("point %d is shards=%d protected=%v, want shards=%d protected", i, p.Shards, p.Protected, want[i])
		}
		if !p.Conserved {
			t.Errorf("%d shards: conservation (including sheds) violated", p.Shards)
		}
		if got := p.Batches + p.ShedQuota + p.ShedOverload; got != p.Enqueued {
			t.Errorf("%d shards: %d batches + %d + %d sheds != %d offered",
				p.Shards, p.Batches, p.ShedQuota, p.ShedOverload, p.Enqueued)
		}
		if p.ShedOverload == 0 {
			t.Errorf("%d shards: spike produced no overload sheds", p.Shards)
		}
		if p.ShedQuota == 0 {
			t.Errorf("%d shards: heavy user produced no quota sheds", p.Shards)
		}
		if !p.TwinMatch {
			t.Errorf("%d shards: same-seed twin digest mismatch", p.Shards)
		}
		if p.Digest == "" {
			t.Errorf("%d shards: empty cluster digest", p.Shards)
		}
		if p.GoodputRatio < 0.9 {
			t.Errorf("%d shards: goodput %.2f of pre-spike rate, want ≥ 0.9", p.Shards, p.GoodputRatio)
		}
		if p.BreakerTrips == 0 {
			t.Errorf("%d shards: brownout tripped no circuit breakers", p.Shards)
		}
	}
	if !r.GoodputOK {
		t.Error("goodput claim not met")
	}
	b := r.Baseline
	if b.Protected || b.Shards != 1 {
		t.Fatalf("baseline is shards=%d protected=%v, want 1-shard unprotected", b.Shards, b.Protected)
	}
	if b.ShedQuota != 0 || b.ShedOverload != 0 {
		t.Errorf("unprotected baseline shed %d/%d submissions", b.ShedQuota, b.ShedOverload)
	}
	if !b.Conserved {
		t.Error("baseline conservation violated")
	}
	if b.BreakerTrips != 0 {
		t.Errorf("baseline tripped %d breakers with breakers disabled", b.BreakerTrips)
	}
	if !r.P99BlowupOK {
		t.Errorf("baseline p99 front-door wait only %.1f× the protected run's, want ≥ 10×", r.P99Blowup)
	}
}
