package experiments

import "testing"

func TestDagScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := DagScenario(11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Stages != 4 {
		t.Errorf("workflow has %d stages, want 4", r.Stages)
	}
	if r.RunState != "complete" {
		t.Errorf("run state %q, want complete", r.RunState)
	}
	if r.Jobs < 4 {
		t.Errorf("workflow expanded into %d grid jobs, want >= 4", r.Jobs)
	}
	if !r.OrderOK {
		t.Error("readiness violated: a stage dispatched before its dependencies finished")
	}
	if !r.ShortOnService {
		t.Error("placement violated: a short stage job landed on the volunteer pool")
	}
	if !r.Conserved {
		t.Error("conservation violated: a stage job missed or repeated its terminal state")
	}
	if !r.DigestsEqual {
		t.Error("determinism violated: same-seed workflow runs diverged (digest or exposition)")
	}
	if r.Digest == "" {
		t.Error("workflow run produced no journal digest")
	}
}

func TestDagCrashScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := DagCrashScenario(11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Kills < 3 {
		t.Errorf("schedule holds %d kills, want >= 3", r.Kills)
	}
	if r.Recoveries < r.Kills {
		t.Errorf("run recovered %d times for %d scheduled kills", r.Recoveries, r.Kills)
	}
	if !r.TornRecovered {
		t.Error("torn log tail was never detected and survived")
	}
	if r.RunState != "complete" {
		t.Errorf("recovered run state %q, want complete", r.RunState)
	}
	if !r.Conserved {
		t.Error("conservation violated across kills")
	}
	if !r.DigestsEqual {
		t.Error("crashed-and-recovered workflow diverged from the uninterrupted run")
	}
}
