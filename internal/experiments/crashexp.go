package experiments

import (
	"fmt"
	"os"

	"lattice/internal/boinc"
	"lattice/internal/core"
	"lattice/internal/faults"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/wal"
	"lattice/internal/workload"
)

// CrashResult is the crash-recovery experiment: the fault experiment's
// 200-replicate submission through the default federation, with the
// coordinator process killed three times mid-batch and recovered from
// its write-ahead log each time (the first recovery additionally over
// a torn log tail). It proves the two invariants durability owes the
// system: conservation — every replicate reaches exactly one terminal
// state across all the kills — and transparency — the final journal
// digest is bit-identical to an uninterrupted same-seed run, so
// recovery changed nothing observable.
type CrashResult struct {
	Jobs int
	// Kills is how many scheduled coordinator kills the run survived.
	Kills int
	// Recoveries counts successful core.Recover calls. It can exceed
	// Kills: when a kill's own log record is torn off, the rebuild
	// resumes an instant before the kill and the schedule fires it
	// again.
	Recoveries int
	// TornRecovered is true when the deliberately torn log tail (bytes
	// ripped off the final record before the first recovery) was
	// detected and survived.
	TornRecovered bool
	// Conserved is true when every journaled job of the crashed run
	// reached exactly one terminal state.
	Conserved bool
	// DigestsEqual is true when the crashed-and-recovered run's journal
	// digest and exposition match the uninterrupted same-seed run's.
	DigestsEqual bool
	// Digest is the crashed run's final journal digest.
	Digest  string
	Results map[string]BatchMetrics
	Rows    [][]string
}

// crashConfig is the fault experiment's federation.
func crashConfig(seed int64) core.Config {
	cfg := core.DefaultConfig(seed)
	cfg.TrainingJobs = 60
	cfg.Scheduler.BundleTargetSeconds = 0 // one grid job per replicate
	cfg.Scheduler.StabilityAlpha = 0.2    // learn stability from observed failures
	for i := range cfg.Resources {
		if cfg.Resources[i].Kind == "boinc" {
			pop := boinc.DefaultPopulation(150)
			cfg.Resources[i].Population = &pop
		}
	}
	return cfg
}

// crashSubmission is the fault experiment's 200-replicate workload:
// hour-scale jobs keep the batch in flight long enough for every
// scheduled kill to land on running work.
func crashSubmission() workload.Submission {
	return workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "GTR",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
			NumTaxa: 48, SeqLength: 2500, SearchReps: 24,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 30, Seed: 9,
		},
		Replicates: 200,
		Bootstrap:  true,
		UserEmail:  "crash@example.edu",
	}
}

// CrashSchedule is the default hostile schedule plus three coordinator
// kills, all inside the 200-replicate batch's ~21h makespan so each
// one lands on running work.
func CrashSchedule() *faults.Schedule {
	sch := core.DefaultFaultSchedule()
	sch.CrashAt = []sim.Time{
		sim.Time(5 * sim.Hour),
		sim.Time(11 * sim.Hour),
		sim.Time(16 * sim.Hour),
	}
	return sch
}

// crashOutcome is one run's collected evidence.
type crashOutcome struct {
	m          BatchMetrics
	digest     string
	terminal   map[string]int
	jobs       int
	sched      metasched.Stats
	recoveries int
	torn       bool
}

// crashBoundary advances the lattice to the next absolute 6-hour
// boundary. Absolute boundaries (rather than now+6h) keep a recovered
// run — which resumes mid-interval at the kill time — on the same
// observation grid as the uninterrupted baseline, so both runs stop
// pumping at the same instant and their journals stay comparable.
func crashBoundary(lat *core.Lattice) {
	const step = 6 * sim.Hour
	k := int(float64(lat.Engine.Now()) / float64(step))
	lat.Engine.RunUntil(sim.Time(sim.Duration(k+1) * step))
}

// crashRun pushes the submission through the federation under sch.
// With dir empty it is the uninterrupted baseline: kills are journaled
// but do not stop the engine. With dir set the run is durable; every
// kill stops the engine, the log tail is deliberately torn before the
// first recovery, and core.Recover resumes the deployment from disk.
func crashRun(seed int64, sch *faults.Schedule, dir string) (*crashOutcome, error) {
	cfg := crashConfig(seed)
	cfg.Faults = sch
	cfg.Durable = dir
	lat, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if dir == "" && lat.Faults != nil {
		lat.Faults.SetCrashStops(false)
	}
	batch, err := lat.SubmitSubmission(crashSubmission())
	if err != nil {
		return nil, err
	}
	batchID := batch.ID
	out := &crashOutcome{}
	start := lat.Engine.Now()
	deadline := start.Add(90 * sim.Day)
	for lat.Engine.Now() < deadline {
		crashBoundary(lat)
		if lat.Faults != nil && lat.Faults.Crashed() {
			if !out.torn {
				// Model the torn final frame of a real crash: rip bytes
				// off the last appended record before recovering.
				fi, err := os.Stat(wal.LogPath(dir))
				if err != nil {
					return nil, err
				}
				if err := os.Truncate(wal.LogPath(dir), fi.Size()-3); err != nil {
					return nil, err
				}
			}
			lat, err = core.Recover(dir, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: recovery %d: %w", out.recoveries+1, err)
			}
			out.recoveries++
			if lat.Recovery != nil && lat.Recovery.TornTail {
				out.torn = true
			}
			continue
		}
		if st, err := lat.Service.Status(batchID); err == nil && st.Done {
			break
		}
	}
	st, err := lat.Service.Status(batchID)
	if err != nil {
		return nil, err
	}
	if !st.Done {
		return nil, fmt.Errorf("experiments: batch not terminal after 90 days (%d/%d done)",
			st.Completed+st.Failed, st.Total)
	}
	if err := lat.DurableErr(); err != nil {
		return nil, err
	}
	live, ok := lat.Service.Batch(batchID)
	if !ok {
		return nil, fmt.Errorf("experiments: batch %s lost across recovery", batchID)
	}
	out.digest = lat.Obs.Journal.Digest()
	out.terminal = lat.Obs.Journal.TerminalCounts()
	out.jobs = len(live.Jobs)
	out.sched = lat.Scheduler.Stats()
	var lastDone sim.Time
	var turnSum sim.Duration
	for _, j := range live.Jobs {
		if j.Status == metasched.StatusCompleted {
			if j.CompletedAt > lastDone {
				lastDone = j.CompletedAt
			}
			turnSum += j.CompletedAt.Sub(j.SubmittedAt)
		}
	}
	out.m = BatchMetrics{
		Jobs:      st.Total,
		Completed: st.Completed,
		Failed:    st.Failed,
	}
	if st.Completed > 0 {
		out.m.Makespan = lastDone.Sub(start)
		out.m.MeanTurnround = turnSum / sim.Duration(st.Completed)
	}
	out.m.Exposition = lat.Obs.Exposition()
	return out, nil
}

// WALOverheadRun executes one hostile-schedule run — durability off
// when durable is false, on (with a scratch directory) when true — so
// the benchmark suite can price the write-ahead log.
func WALOverheadRun(seed int64, durable bool) (BatchMetrics, error) {
	dir := ""
	if durable {
		d, err := os.MkdirTemp("", "lattice-wal-bench-*")
		if err != nil {
			return BatchMetrics{}, err
		}
		//lint:allow errdrop -- scratch cleanup; the metrics are already collected
		defer os.RemoveAll(d)
		dir = d
	}
	o, err := crashRun(seed, core.DefaultFaultSchedule(), dir)
	if err != nil {
		return BatchMetrics{}, err
	}
	return o.m, nil
}

// CrashScenario runs the crash-recovery experiment: the uninterrupted
// baseline, then the same seed killed at every scheduled crash point
// and recovered from the write-ahead log.
func CrashScenario(seed int64) (*CrashResult, error) {
	sch := CrashSchedule()
	base, err := crashRun(seed, sch, "")
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "lattice-crash-*")
	if err != nil {
		return nil, err
	}
	//lint:allow errdrop -- scratch cleanup; the evidence is already collected
	defer os.RemoveAll(dir)
	crashed, err := crashRun(seed, sch, dir+"/wal")
	if err != nil {
		return nil, err
	}
	r := &CrashResult{
		Jobs:          crashed.jobs,
		Kills:         len(sch.CrashAt),
		Recoveries:    crashed.recoveries,
		TornRecovered: crashed.torn,
		Digest:        crashed.digest,
		Results: map[string]BatchMetrics{
			"uninterrupted": base.m,
			"crashed":       crashed.m,
		},
	}
	r.Conserved = len(crashed.terminal) >= crashed.jobs
	for _, n := range crashed.terminal {
		if n != 1 {
			r.Conserved = false
			break
		}
	}
	r.DigestsEqual = crashed.digest == base.digest &&
		crashed.m.Exposition == base.m.Exposition
	row := func(name string, o *crashOutcome) []string {
		return []string{
			name,
			fmt.Sprintf("%d", o.m.Jobs),
			fmt.Sprintf("%d", o.m.Completed),
			fmt.Sprintf("%d", o.m.Failed),
			hours(o.m.Makespan),
			fmt.Sprintf("%d", o.recoveries),
			fmt.Sprintf("%d", o.sched.Requeued),
			fmt.Sprintf("%d", o.sched.SubmitRetries),
		}
	}
	r.Rows = [][]string{row("uninterrupted", base), row("crashed", crashed)}
	return r, nil
}

func (r *CrashResult) String() string {
	s := fmt.Sprintf("Crash recovery — one 200-replicate submission, %d coordinator kills mid-batch\n", r.Kills)
	s += table([]string{"config", "jobs", "completed", "failed", "makespan", "recoveries", "requeues", "submit-retries"}, r.Rows)
	s += fmt.Sprintf("recoveries: %d (torn log tail survived: %s)\n", r.Recoveries, pass(r.TornRecovered))
	s += fmt.Sprintf("conservation: every job exactly one terminal state: %s\n", pass(r.Conserved))
	s += fmt.Sprintf("transparency: crashed digest == uninterrupted digest: %s\n", pass(r.DigestsEqual))
	return s
}
