package experiments

import (
	"fmt"
	"os"

	"lattice/internal/core"
	"lattice/internal/dag"
	"lattice/internal/faults"
	"lattice/internal/metasched"
	"lattice/internal/obs"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/wal"
	"lattice/internal/workload"
)

// DagResult is the workflow-engine experiment: the canonical
// four-stage analysis (model-selection → search ∥ bootstrap →
// consensus) submitted as one typed DAG to the default federation. It
// proves what the engine owes the system: readiness ordering (no
// stage batch dispatched before its dependencies finished), placement
// policy (short stages never land on the volunteer pool), job
// conservation across every derived stage batch, and same-seed
// bit-determinism of the whole graph.
type DagResult struct {
	// Stages and Jobs count workflow stages and the grid jobs their
	// batches expanded into.
	Stages int
	Jobs   int
	// RunState is the workflow run's final state ("complete").
	RunState string
	// OrderOK is true when every stage's dispatch journal event came
	// after the stage-done events of all its dependencies.
	OrderOK bool
	// ShortOnService is true when no job of a Short stage was ever
	// placed on a BOINC resource.
	ShortOnService bool
	// Conserved is true when every journaled grid job reached exactly
	// one terminal state.
	Conserved bool
	// DigestsEqual is true when two same-seed runs produced identical
	// journal digests and expositions.
	DigestsEqual bool
	// Digest is the run's final journal digest.
	Digest string
	Rows   [][]string
}

// dagSubmissionSpec is the per-stage job spec: hour-scale searches so
// the graph stays in flight long enough for scheduling (and, in the
// crash variant, every kill) to land on running work.
func dagSubmissionSpec() workload.JobSpec {
	return workload.JobSpec{
		DataType: phylo.Nucleotide, SubstModel: "GTR",
		RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
		NumTaxa: 48, SeqLength: 2500, SearchReps: 24,
		StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 30, Seed: 9,
	}
}

// dagWorkflow is the canonical four-stage analysis: 16 search
// replicates and a 150-replicate bootstrap fan-out between two short
// service-grid stages.
func dagWorkflow(seed int64) workload.Workflow {
	return dag.StandardAnalysis("standard-analysis", "workflow@example.edu", seed,
		dagSubmissionSpec(), 16, 150)
}

// dagOutcome is one workflow run's collected evidence.
type dagOutcome struct {
	m        BatchMetrics
	digest   string
	terminal map[string]int
	status   dag.RunStatus
	events   []obs.Event // full journal
	sched    metasched.Stats
	// meanWait is the mean stage-queue wait: how long a stage sat
	// between becoming logically ready (all dependencies done) and its
	// batch being submitted.
	meanWait   sim.Duration
	recoveries int
	torn       bool
}

// dagRun submits the four-stage workflow to a crashConfig federation
// and pumps the engine until the run is terminal. With dir empty the
// run is in-memory (kills, if scheduled, are journaled but do not stop
// the engine); with dir set the run is durable, every kill stops the
// engine, the log tail is torn before the first recovery, and
// core.Recover resumes the deployment — workflow graph included — from
// the WAL.
func dagRun(seed int64, sch *faults.Schedule, dir string) (*dagOutcome, error) {
	cfg := crashConfig(seed)
	cfg.Faults = sch
	cfg.Durable = dir
	lat, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if dir == "" && lat.Faults != nil {
		lat.Faults.SetCrashStops(false)
	}
	run, err := lat.SubmitWorkflow(dagWorkflow(seed))
	if err != nil {
		return nil, err
	}
	runID := run.ID
	out := &dagOutcome{}
	start := lat.Engine.Now()
	deadline := start.Add(90 * sim.Day)
	for lat.Engine.Now() < deadline {
		crashBoundary(lat)
		if lat.Faults != nil && lat.Faults.Crashed() {
			if !out.torn {
				fi, err := os.Stat(wal.LogPath(dir))
				if err != nil {
					return nil, err
				}
				if err := os.Truncate(wal.LogPath(dir), fi.Size()-3); err != nil {
					return nil, err
				}
			}
			lat, err = core.Recover(dir, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: workflow recovery %d: %w", out.recoveries+1, err)
			}
			out.recoveries++
			if lat.Recovery != nil && lat.Recovery.TornTail {
				out.torn = true
			}
			continue
		}
		if st, err := lat.Workflows.Status(runID); err == nil && st.State != dag.RunRunning {
			break
		}
	}
	st, err := lat.Workflows.Status(runID)
	if err != nil {
		return nil, err
	}
	if st.State == dag.RunRunning {
		return nil, fmt.Errorf("experiments: workflow not terminal after 90 days: %+v", st)
	}
	if err := lat.DurableErr(); err != nil {
		return nil, err
	}
	out.status = st
	out.digest = lat.Obs.Journal.Digest()
	out.terminal = lat.Obs.Journal.TerminalCounts()
	out.events = lat.Obs.Journal.Events()
	out.sched = lat.Scheduler.Stats()

	var completed, failed int
	var turnSum sim.Duration
	for _, ss := range st.Stages {
		b, ok := lat.Service.Batch(ss.BatchID)
		if !ok {
			continue
		}
		out.m.Jobs += len(b.Jobs)
		for _, j := range b.Jobs {
			if j.Status != metasched.StatusCompleted {
				if j.Status == metasched.StatusFailed {
					failed++
				}
				continue
			}
			completed++
			turnSum += j.CompletedAt.Sub(j.SubmittedAt)
		}
	}
	out.m.Completed, out.m.Failed = completed, failed
	if completed > 0 {
		out.m.Makespan = st.DoneAt.Sub(start)
		out.m.MeanTurnround = turnSum / sim.Duration(completed)
	}
	out.meanWait = stageQueueWait(st, dagWorkflow(seed))
	out.m.Exposition = lat.Obs.Exposition()
	return out, nil
}

// stageQueueWait averages, over the workflow's stages, the time
// between a stage becoming logically ready — its dependencies all done
// (submission time for roots) — and its batch being submitted. The
// engine dispatches dependents at the instant the last dependency's
// batch turns terminal, so for a DAG run this is ~0; the manual
// chaining it replaces pays the user's polling latency here.
func stageQueueWait(st dag.RunStatus, wf workload.Workflow) sim.Duration {
	doneAt := make(map[string]sim.Time, len(st.Stages))
	startAt := make(map[string]sim.Time, len(st.Stages))
	for _, ss := range st.Stages {
		doneAt[ss.ID] = ss.DoneAt
		startAt[ss.ID] = ss.StartedAt
	}
	var sum sim.Duration
	for _, stage := range wf.Stages {
		ready := st.SubmittedAt
		for _, dep := range stage.After {
			if doneAt[dep] > ready {
				ready = doneAt[dep]
			}
		}
		sum += startAt[stage.ID].Sub(ready)
	}
	return sum / sim.Duration(len(wf.Stages))
}

// dagOrderOK checks readiness against the journal: a stage's
// wf-dispatch event must come after the wf-stage-done events of every
// dependency.
func dagOrderOK(o *dagOutcome, wf workload.Workflow) bool {
	dispatch := make(map[string]int)
	done := make(map[string]int)
	for i, ev := range o.events {
		if ev.Batch != o.status.ID {
			continue
		}
		switch ev.Stage {
		case obs.StageWfDispatch:
			if _, seen := dispatch[ev.Job]; !seen {
				dispatch[ev.Job] = i
			}
		case obs.StageWfStageDone:
			done[ev.Job] = i
		}
	}
	for _, st := range wf.Stages {
		d, ok := dispatch[st.ID]
		if !ok {
			return false
		}
		for _, dep := range st.After {
			fin, ok := done[dep]
			if !ok || fin > d {
				return false
			}
		}
	}
	return true
}

// dagShortOnService checks placement policy against the journal: no
// place event of a Short stage's batch may name a BOINC resource.
func dagShortOnService(o *dagOutcome, wf workload.Workflow, boincNames map[string]bool) bool {
	shortBatch := make(map[string]bool)
	for _, st := range wf.Stages {
		if !st.Short {
			continue
		}
		for _, ss := range o.status.Stages {
			if ss.ID == st.ID && ss.BatchID != "" {
				shortBatch[ss.BatchID] = true
			}
		}
	}
	if len(shortBatch) == 0 {
		return false
	}
	for _, ev := range o.events {
		if ev.Stage == obs.StagePlace && shortBatch[ev.Batch] && boincNames[ev.Resource] {
			return false
		}
	}
	return true
}

// dagConserved checks job conservation: every journaled grid job
// reached exactly one terminal state, and every expanded stage job was
// journaled.
func dagConserved(o *dagOutcome) bool {
	if len(o.terminal) < o.m.Jobs {
		return false
	}
	for _, n := range o.terminal {
		if n != 1 {
			return false
		}
	}
	return true
}

// DagScenario runs the workflow experiment: the four-stage analysis
// twice with the same seed on a calm grid.
func DagScenario(seed int64) (*DagResult, error) {
	first, err := dagRun(seed, nil, "")
	if err != nil {
		return nil, err
	}
	again, err := dagRun(seed, nil, "")
	if err != nil {
		return nil, err
	}
	wf := dagWorkflow(seed)
	boincNames := make(map[string]bool)
	for _, rs := range crashConfig(seed).Resources {
		if rs.Kind == "boinc" {
			boincNames[rs.Name] = true
		}
	}
	r := &DagResult{
		Stages:         len(first.status.Stages),
		Jobs:           first.m.Jobs,
		RunState:       first.status.State,
		OrderOK:        dagOrderOK(first, wf),
		ShortOnService: dagShortOnService(first, wf, boincNames),
		Conserved:      dagConserved(first),
		Digest:         first.digest,
		DigestsEqual: first.digest == again.digest &&
			first.m.Exposition == again.m.Exposition,
	}
	for _, ss := range first.status.Stages {
		r.Rows = append(r.Rows, []string{
			ss.ID, string(ss.State),
			fmt.Sprintf("%d", ss.Attempts),
			ss.BatchID,
			fmt.Sprintf("%d", ss.Completed),
			fmt.Sprintf("%d", ss.Failed),
			hours(ss.DoneAt.Sub(ss.StartedAt)),
		})
	}
	return r, nil
}

func (r *DagResult) String() string {
	s := fmt.Sprintf("Workflow engine — %d-stage standard analysis as one typed DAG (%d grid jobs)\n",
		r.Stages, r.Jobs)
	s += table([]string{"stage", "state", "attempts", "batch", "completed", "failed", "duration"}, r.Rows)
	s += fmt.Sprintf("run state: %s\n", r.RunState)
	s += fmt.Sprintf("readiness: no stage dispatched before its dependencies finished: %s\n", pass(r.OrderOK))
	s += fmt.Sprintf("placement: short stages never on the volunteer pool: %s\n", pass(r.ShortOnService))
	s += fmt.Sprintf("conservation: every stage job exactly one terminal state: %s\n", pass(r.Conserved))
	s += fmt.Sprintf("determinism: same-seed digests identical: %s\n", pass(r.DigestsEqual))
	return s
}

// DagCrashResult is the workflow crash experiment: the same four-stage
// DAG with the coordinator killed three times mid-graph and recovered
// from the write-ahead log each time (the first recovery over a torn
// log tail). Only the workflow itself is a WAL input — every stage
// batch is regenerated by deterministic re-execution — so a
// bit-identical final digest proves the whole graph resumed exactly
// where it died.
type DagCrashResult struct {
	Stages int
	Jobs   int
	// Kills is how many scheduled coordinator kills the run survived.
	Kills int
	// Recoveries counts successful core.Recover calls (can exceed
	// Kills when a kill's own record is torn off and it fires again).
	Recoveries int
	// TornRecovered is true when the torn log tail was detected and
	// survived.
	TornRecovered bool
	// RunState is the recovered workflow's final state.
	RunState string
	// Conserved is true when every stage job of the crashed run
	// reached exactly one terminal state.
	Conserved bool
	// DigestsEqual is true when the crashed run's digest and
	// exposition match the uninterrupted same-seed run's.
	DigestsEqual bool
	Digest       string
	Rows         [][]string
}

// DagCrashSchedule is the default hostile schedule plus three
// coordinator kills placed inside the workflow's makespan: one during
// the root stage's fan-out, two while the search and bootstrap
// branches are in flight.
func DagCrashSchedule() *faults.Schedule {
	sch := core.DefaultFaultSchedule()
	sch.CrashAt = []sim.Time{
		sim.Time(4 * sim.Hour),
		sim.Time(9 * sim.Hour),
		sim.Time(14 * sim.Hour),
	}
	return sch
}

// DagCrashScenario runs the workflow crash experiment: the
// uninterrupted baseline, then the same seed killed at every scheduled
// crash point and recovered from the write-ahead log.
func DagCrashScenario(seed int64) (*DagCrashResult, error) {
	sch := DagCrashSchedule()
	base, err := dagRun(seed, sch, "")
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "lattice-dagcrash-*")
	if err != nil {
		return nil, err
	}
	//lint:allow errdrop -- scratch cleanup; the evidence is already collected
	defer os.RemoveAll(dir)
	crashed, err := dagRun(seed, sch, dir+"/wal")
	if err != nil {
		return nil, err
	}
	r := &DagCrashResult{
		Stages:        len(crashed.status.Stages),
		Jobs:          crashed.m.Jobs,
		Kills:         len(sch.CrashAt),
		Recoveries:    crashed.recoveries,
		TornRecovered: crashed.torn,
		RunState:      crashed.status.State,
		Conserved:     dagConserved(crashed),
		Digest:        crashed.digest,
		DigestsEqual: crashed.digest == base.digest &&
			crashed.m.Exposition == base.m.Exposition,
	}
	row := func(name string, o *dagOutcome) []string {
		return []string{
			name,
			fmt.Sprintf("%d", o.m.Jobs),
			fmt.Sprintf("%d", o.m.Completed),
			fmt.Sprintf("%d", o.m.Failed),
			hours(o.m.Makespan),
			fmt.Sprintf("%d", o.recoveries),
			fmt.Sprintf("%d", o.sched.Requeued),
		}
	}
	r.Rows = [][]string{row("uninterrupted", base), row("crashed", crashed)}
	return r, nil
}

func (r *DagCrashResult) String() string {
	s := fmt.Sprintf("Workflow crash recovery — %d-stage DAG, %d coordinator kills mid-graph\n",
		r.Stages, r.Kills)
	s += table([]string{"config", "jobs", "completed", "failed", "makespan", "recoveries", "requeues"}, r.Rows)
	s += fmt.Sprintf("run state: %s\n", r.RunState)
	s += fmt.Sprintf("recoveries: %d (torn log tail survived: %s)\n", r.Recoveries, pass(r.TornRecovered))
	s += fmt.Sprintf("conservation: every stage job exactly one terminal state: %s\n", pass(r.Conserved))
	s += fmt.Sprintf("transparency: crashed digest == uninterrupted digest: %s\n", pass(r.DigestsEqual))
	return s
}

// flatPollInterval is how often the manual-chaining baseline user
// checks whether a finished stage unblocked the next submission — a
// couple of times per working day, which is generous for a human.
const flatPollInterval = 6 * sim.Hour

// WorkflowOverheadRun executes the four-stage analysis either as one
// typed DAG (useDag) or the way the paper's users actually chained it:
// each stage submitted by hand once its dependencies' batches are
// observed done, discovering that by polling every flatPollInterval.
// The pair prices the engine for the benchmark suite — wall time plus
// mean stage-queue wait (dependency-done → stage-submitted).
func WorkflowOverheadRun(seed int64, useDag bool) (BatchMetrics, sim.Duration, error) {
	if useDag {
		o, err := dagRun(seed, nil, "")
		if err != nil {
			return BatchMetrics{}, 0, err
		}
		return o.m, o.meanWait, nil
	}
	cfg := crashConfig(seed)
	lat, err := core.New(cfg)
	if err != nil {
		return BatchMetrics{}, 0, err
	}
	wf := dagWorkflow(seed)
	start := lat.Engine.Now()
	batchOf := make(map[string]string, len(wf.Stages))
	var waitSum sim.Duration
	// submitReady submits every unsubmitted stage whose dependencies'
	// batches are done, charging the gap since the last dependency
	// finished as the stage's queue wait. Stages are declared in
	// topological order, so one sweep per poll suffices.
	submitReady := func() error {
		for i := range wf.Stages {
			st := wf.Stages[i]
			if _, ok := batchOf[st.ID]; ok {
				continue
			}
			ready := start
			blocked := false
			for _, dep := range st.After {
				id, ok := batchOf[dep]
				if !ok {
					blocked = true
					break
				}
				bst, err := lat.Service.Status(id)
				if err != nil || !bst.Done {
					blocked = true
					break
				}
				if bst.DoneAt > ready {
					ready = bst.DoneAt
				}
			}
			if blocked {
				continue
			}
			sub := workload.Submission{
				Spec:        st.Spec,
				Replicates:  st.Replicates,
				Bootstrap:   st.Bootstrap,
				UserEmail:   wf.UserEmail,
				ServiceOnly: st.Short,
			}
			sub.Spec.Seed = dag.StageSeed(wf.Seed, st.ID, 1)
			b, err := lat.SubmitSubmission(sub)
			if err != nil {
				return err
			}
			batchOf[st.ID] = b.ID
			waitSum += lat.Engine.Now().Sub(ready)
		}
		return nil
	}
	if err := submitReady(); err != nil {
		return BatchMetrics{}, 0, err
	}
	deadline := start.Add(90 * sim.Day)
	for lat.Engine.Now() < deadline {
		lat.Run(flatPollInterval)
		if err := submitReady(); err != nil {
			return BatchMetrics{}, 0, err
		}
		if len(batchOf) == len(wf.Stages) {
			done := true
			for _, id := range batchOf {
				if st, err := lat.Service.Status(id); err != nil || !st.Done {
					done = false
					break
				}
			}
			if done {
				break
			}
		}
	}
	if len(batchOf) != len(wf.Stages) {
		return BatchMetrics{}, 0, fmt.Errorf("experiments: flat chain stalled: %d of %d stages submitted",
			len(batchOf), len(wf.Stages))
	}
	m := BatchMetrics{}
	var turnSum sim.Duration
	var lastDone sim.Time
	for _, id := range batchOf {
		b, ok := lat.Service.Batch(id)
		if !ok {
			return BatchMetrics{}, 0, fmt.Errorf("experiments: flat batch %s lost", id)
		}
		m.Jobs += len(b.Jobs)
		for _, j := range b.Jobs {
			switch j.Status {
			case metasched.StatusCompleted:
				m.Completed++
				turnSum += j.CompletedAt.Sub(j.SubmittedAt)
				if j.CompletedAt > lastDone {
					lastDone = j.CompletedAt
				}
			case metasched.StatusFailed:
				m.Failed++
			default:
				return BatchMetrics{}, 0, fmt.Errorf("experiments: flat job %s not terminal", j.Desc.JobID)
			}
		}
	}
	if m.Completed > 0 {
		m.Makespan = lastDone.Sub(start)
		m.MeanTurnround = turnSum / sim.Duration(m.Completed)
	}
	m.Exposition = lat.Obs.Exposition()
	return m, waitSum / sim.Duration(len(wf.Stages)), nil
}
