package experiments

import (
	"fmt"
	"math"

	"lattice/internal/boinc"
	"lattice/internal/core"
	"lattice/internal/estimate"
	"lattice/internal/lrm"
	"lattice/internal/lrm/condor"
	"lattice/internal/lrm/pbs"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// BundlingResult is E9: replicate bundling for very short jobs.
type BundlingResult struct {
	Rows [][]string
	// OverheadFraction per configuration: overhead CPU / total CPU.
	Off, On float64
	// Makespans.
	MakespanOff, MakespanOn sim.Duration
}

// ReplicateBundling submits a 600-replicate batch of few-minute jobs
// with bundling disabled and enabled — Section VI-A's third use of
// estimates ("the overhead of submitting each one independently
// substantially and negatively impacts performance").
func ReplicateBundling(seed int64) (*BundlingResult, error) {
	res := &BundlingResult{}
	shortSpec := workload.JobSpec{
		DataType: phylo.Nucleotide, SubstModel: "HKY85",
		RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.6,
		NumTaxa: 8, SeqLength: 220, SearchReps: 1,
		StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 10, Seed: seed,
	}
	perJob := workload.ReferenceSeconds(shortSpec.ExpectedWork())
	for _, bundling := range []bool{false, true} {
		sched := metasched.DefaultConfig()
		if !bundling {
			sched.BundleTargetSeconds = 0
		}
		g, err := newGridRun(seed, sched, 100, 120)
		if err != nil {
			return nil, err
		}
		// Exact estimates isolate the bundling mechanism from model
		// extrapolation error on jobs smaller than the training range.
		g.lat.Scheduler.SetPredictor(oraclePredictor{})
		sub := workload.Submission{Spec: shortSpec, Replicates: 600, UserEmail: "boot@lab.edu", Bootstrap: true}
		m, err := g.runSubmissions([]workload.Submission{sub}, 60*sim.Day)
		if err != nil {
			return nil, err
		}
		overhead := float64(m.Jobs) * sched.PerJobOverheadSeconds / 3600
		useful := perJob * 600 / 3600
		frac := overhead / (overhead + useful)
		name := "bundling off (600 jobs)"
		if bundling {
			name = fmt.Sprintf("bundling on (%d jobs)", m.Jobs)
			res.On = frac
			res.MakespanOn = m.Makespan
		} else {
			res.Off = frac
			res.MakespanOff = m.Makespan
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%d", m.Jobs),
			fmt.Sprintf("%d/%d", m.Completed, m.Jobs),
			hours(m.Makespan),
			fmt.Sprintf("%.1f%%", 100*frac),
		})
	}
	return res, nil
}

func (r *BundlingResult) String() string {
	return "E9 — replicate bundling for very short jobs (30 s grid overhead per job)\n" +
		table([]string{"configuration", "grid jobs", "completed", "makespan", "overhead fraction"}, r.Rows)
}

// PortalScaleResult is E10: the same 2000-replicate submission on the
// grid, one cluster, and one processor.
type PortalScaleResult struct {
	Rows [][]string
	// Makespans for speedup assertions.
	Grid, Cluster, Single sim.Duration
}

// PortalScale reproduces Section III-B: "whereas other science portals
// generally allow you to use only one processor or maybe a small
// handful", the grid takes a maximal 2000-replicate submission and
// spreads it across the federation.
func PortalScale(seed int64) (*PortalScaleResult, error) {
	res := &PortalScaleResult{}
	spec := workload.JobSpec{
		DataType: phylo.Nucleotide, SubstModel: "GTR",
		RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
		NumTaxa: 100, SeqLength: 3000, SearchReps: 1,
		StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 25, Seed: seed,
	}
	sub := workload.Submission{Spec: spec, Replicates: 2000, UserEmail: "atol@lab.edu", Bootstrap: true}

	// Full federation.
	g, err := newGridRun(seed, metasched.DefaultConfig(), 100, 400)
	if err != nil {
		return nil, err
	}
	m, err := g.runSubmissions([]workload.Submission{sub}, 365*sim.Day)
	if err != nil {
		return nil, err
	}
	res.Grid = m.P95Completion
	res.Rows = append(res.Rows, []string{"The Lattice Project (full grid)", fmt.Sprintf("%d", g.lat.TotalCores()), hours(m.P95Completion), hours(m.Makespan)})

	// Single 64-core cluster.
	single := core.Config{
		Seed: seed, MDSTTL: 5 * sim.Minute, ProviderPeriod: sim.Minute,
		Scheduler: metasched.DefaultConfig(), Estimator: estimate.DefaultConfig(), TrainingJobs: 100,
		Resources: []core.ResourceSpec{{Kind: "pbs", Name: "one-cluster", Nodes: 64, Speed: 2.0, MemMB: 8192, Platform: lrm.LinuxX86}},
	}
	lat, err := core.New(single)
	if err != nil {
		return nil, err
	}
	gr := &gridRun{lat: lat, seed: seed}
	m, err = gr.runSubmissions([]workload.Submission{sub}, 3*365*sim.Day)
	if err != nil {
		return nil, err
	}
	res.Cluster = m.P95Completion
	res.Rows = append(res.Rows, []string{"single 64-node cluster", "64", hours(m.P95Completion), hours(m.Makespan)})

	// Single processor: analytic (2000 sequential runs at speed 1).
	perJob := workload.ReferenceSeconds(spec.ExpectedWork())
	res.Single = sim.Duration(2000 * perJob)
	res.Rows = append(res.Rows, []string{"single processor (typical portal)", "1",
		fmt.Sprintf("%.0f h (%.0f days)", 0.95*res.Single.Hours(), 0.95*res.Single.Hours()/24),
		fmt.Sprintf("%.0f h", res.Single.Hours())})
	return res, nil
}

func (r *PortalScaleResult) String() string {
	return "E10 — one maximal portal submission (2000 replicates) across deployment scales\n" +
		table([]string{"deployment", "cores", "95% complete", "all complete"}, r.Rows)
}

// SystemScaleResult is E11: the paper-scale federation.
type SystemScaleResult struct {
	TotalCores     int
	BoincHosts     int
	Platforms      int
	CPUYearsPerDay float64
	// FifteenCPUYears is the wall time to finish a 15-CPU-year batch
	// (the paper's first system did it "in just a few months").
	FifteenCPUYears sim.Duration
	Rows            [][]string
}

// SystemScale builds a federation at the paper's published scale
// (>5000 CPU cores, thousands of volunteer hosts) and verifies the
// aggregate claims, then times a 15-CPU-year batch.
func SystemScale(seed int64) (*SystemScaleResult, error) {
	pop := boinc.DefaultPopulation(4600)
	cfg := core.DefaultConfig(seed)
	cfg.TrainingJobs = 100
	for i := range cfg.Resources {
		switch cfg.Resources[i].Kind {
		case "boinc":
			cfg.Resources[i].Population = &pop
		case "condor":
			cfg.Resources[i].Nodes *= 2
		case "pbs", "sge":
			cfg.Resources[i].Nodes *= 2
		}
	}
	lat, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &SystemScaleResult{TotalCores: lat.TotalCores(), BoincHosts: lat.Boinc.NumHosts()}
	plats := map[lrm.Platform]bool{}
	for _, e := range lat.Index.Snapshot() {
		for _, p := range e.Info.Platforms {
			plats[p] = true
		}
	}
	res.Platforms = len(plats)

	// A 15-CPU-year batch of AToL-scale analyses (~20 reference-hours
	// per job, the simulation-study scale of the paper's first grid).
	spec := workload.JobSpec{
		DataType: phylo.Nucleotide, SubstModel: "GTR",
		RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
		NumTaxa: 250, SeqLength: 5000, SearchReps: 4,
		StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 25, Seed: seed,
	}
	perJob := workload.ReferenceSeconds(spec.ExpectedWork())
	jobs := int(15 * 365 * 86400 / perJob)
	var subs []workload.Submission
	remaining := jobs
	for remaining > 0 {
		n := remaining
		if n > workload.MaxReplicates {
			n = workload.MaxReplicates
		}
		subs = append(subs, workload.Submission{Spec: spec, Replicates: n, UserEmail: "sim@lab.edu", Bootstrap: true})
		remaining -= n
	}
	g := &gridRun{lat: lat, seed: seed}
	m, err := g.runSubmissions(subs, 360*sim.Day)
	if err != nil {
		return nil, err
	}
	res.FifteenCPUYears = m.Makespan
	if m.Makespan > 0 {
		res.CPUYearsPerDay = (m.UsefulCPUHours / 24 / 365) / (m.Makespan.Hours() / 24)
	}
	res.Rows = [][]string{
		{"total CPU cores", fmt.Sprintf("%d", res.TotalCores), "> 5000 (paper)"},
		{"volunteer hosts", fmt.Sprintf("%d", res.BoincHosts), "23192 lifetime (paper)"},
		{"platforms", fmt.Sprintf("%d", res.Platforms), "3 (paper)"},
		{"15-CPU-year batch", fmt.Sprintf("%.0f days (%d/%d jobs)", res.FifteenCPUYears.Hours()/24, m.Completed, m.Jobs), "a few months (paper)"},
		{"sustained throughput", fmt.Sprintf("%.2f CPU-years/day", res.CPUYearsPerDay), "—"},
	}
	return res, nil
}

func (r *SystemScaleResult) String() string {
	return "E11 — federation at the paper's published scale\n" +
		table([]string{"quantity", "measured", "paper"}, r.Rows)
}

// RetrainingResult is E13: continuous model retraining from reference
// forks.
type RetrainingResult struct {
	Rows [][]string
	// Final rolling mean |log error| with and without retraining.
	Frozen, Retrained float64
}

// ContinuousRetraining streams 240 submissions whose parameter mix
// drifts (data sets grow over the stream, as AToL projects scale up);
// a frozen 30-job model decays while the continuously retrained one
// tracks the drift — Section VI-E.
func ContinuousRetraining(seed int64) (*RetrainingResult, error) {
	makeStream := func() []workload.JobSpec {
		gen := workload.NewGenerator(seed + 5)
		specs := make([]workload.JobSpec, 240)
		for i := range specs {
			s := gen.Job()
			// Drift: sizes grow ~3× across the stream.
			scale := 1 + 2*float64(i)/float64(len(specs))
			s.NumTaxa = int(float64(s.NumTaxa) * scale)
			if s.NumTaxa > 400 {
				s.NumTaxa = 400
			}
			specs[i] = s
		}
		return specs
	}
	res := &RetrainingResult{}
	for _, retrain := range []bool{false, true} {
		cfg := estimate.DefaultConfig()
		cfg.Seed = seed
		est, err := estimate.Bootstrap(cfg, workload.NewGenerator(seed), 30)
		if err != nil {
			return nil, err
		}
		rng := sim.NewRNG(seed + 9)
		var rolling []float64
		for _, spec := range makeStream() {
			spec := spec
			pred, err := est.Predict(&spec)
			if err != nil {
				return nil, err
			}
			actual := workload.ReferenceSeconds(spec.SampleWork(rng))
			rolling = append(rolling, math.Abs(math.Log(pred)-math.Log(actual)))
			if retrain {
				if err := est.AddObservation(&spec, actual); err != nil {
					return nil, err
				}
				if err := est.Retrain(); err != nil {
					return nil, err
				}
			}
		}
		// Mean |log error| over the final quarter of the stream.
		tail := rolling[len(rolling)*3/4:]
		var sum float64
		for _, v := range tail {
			sum += v
		}
		final := sum / float64(len(tail))
		name := "frozen 30-job model"
		if retrain {
			name = "continuous retraining"
			res.Retrained = final
		} else {
			res.Frozen = final
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%.3f", final),
			fmt.Sprintf("×%.2f", math.Exp(final)),
		})
	}
	return res, nil
}

func (r *RetrainingResult) String() string {
	return "E13 — continuous retraining vs frozen model under workload drift\n" +
		table([]string{"configuration", "tail mean |log error|", "typical factor"}, r.Rows)
}

// CheckpointResult is E14: estimate gating vs the 1-hour
// terminate-and-resume alternative the paper considered and deferred.
type CheckpointResult struct {
	Rows [][]string
	// Overheads in CPU-hours.
	GatingWaste, CyclingOverhead float64
	GatingLatency, CyclingLat    sim.Duration
}

// CheckpointAlternative compares (a) sending a long job to a stable
// cluster (the estimate-gating design) against (b) running it on an
// unstable pool in one-hour checkpoint slices with per-slice
// reschedule/data-movement overhead ("we anticipate significant
// overhead resulting from terminating jobs and rescheduling them").
func CheckpointAlternative(seed int64) (*CheckpointResult, error) {
	const jobRefHours = 30.0
	const slice = sim.Hour
	const perSliceOverhead = 150.0 // seconds: requeue + moving checkpoints around
	res := &CheckpointResult{}

	// (a) Gating: job waits for and runs on a busy stable cluster.
	{
		eng := sim.NewEngine()
		cl, err := pbs.New(eng, pbs.Config{
			Name: "cluster", Platform: lrm.LinuxX86,
			Nodes: []pbs.NodeClass{{Count: 4, Speed: 1, MemoryMB: 4096}},
		})
		if err != nil {
			return nil, err
		}
		// Background load: the cluster is half busy.
		for i := 0; i < 6; i++ {
			if err := cl.Submit(&lrm.Job{ID: fmt.Sprintf("bg%d", i), Work: 6 * 3600 * lrm.ReferenceCellsPerSecond, MemoryMB: 256}); err != nil {
				return nil, err
			}
		}
		var doneAt sim.Time
		j := &lrm.Job{ID: "long", Work: jobRefHours * 3600 * lrm.ReferenceCellsPerSecond, MemoryMB: 256}
		j.OnComplete = func(at sim.Time) { doneAt = at }
		if err := cl.Submit(j); err != nil {
			return nil, err
		}
		eng.RunUntil(sim.Time(30 * sim.Day))
		res.GatingLatency = doneAt.Sub(0)
		res.GatingWaste = cl.Stats().WastedCPU / 3600
	}

	// (b) Checkpoint cycling on an unstable pool.
	{
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		machines := make([]condor.Machine, 6)
		for i := range machines {
			machines[i] = condor.Machine{
				Speed: 1, MemoryMB: 4096, Platform: lrm.LinuxX86,
				MeanOwnerAway: 4 * sim.Hour, MeanOwnerBusy: 2 * sim.Hour,
			}
		}
		pool, err := condor.New(eng, rng, condor.Config{Name: "pool", Machines: machines})
		if err != nil {
			return nil, err
		}
		remaining := jobRefHours * 3600.0
		var doneAt sim.Time
		var overhead float64
		var submitErr error
		sliceN := 0
		var submitSlice func()
		submitSlice = func() {
			sliceSecs := math.Min(remaining, slice.Seconds())
			sliceN++
			overhead += perSliceOverhead
			j := &lrm.Job{
				ID:       fmt.Sprintf("slice-%d", sliceN),
				Work:     (sliceSecs + perSliceOverhead) * lrm.ReferenceCellsPerSecond,
				MemoryMB: 256,
			}
			j.OnComplete = func(at sim.Time) {
				remaining -= sliceSecs
				if remaining <= 0 {
					doneAt = at
					return
				}
				submitSlice()
			}
			if err := pool.Submit(j); err != nil {
				submitErr = err
			}
		}
		submitSlice()
		eng.RunUntil(sim.Time(60 * sim.Day))
		if submitErr != nil {
			return nil, submitErr
		}
		res.CyclingLat = doneAt.Sub(0)
		res.CyclingOverhead = overhead/3600 + pool.Stats().WastedCPU/3600
		if doneAt == 0 {
			res.CyclingLat = 60 * sim.Day
		}
	}
	res.Rows = [][]string{
		{"estimate gating → stable cluster", hours(res.GatingLatency), fmt.Sprintf("%.1f", res.GatingWaste)},
		{"1-hour checkpoint cycling on pool", hours(res.CyclingLat), fmt.Sprintf("%.1f", res.CyclingOverhead)},
	}
	return res, nil
}

func (r *CheckpointResult) String() string {
	return "E14 — a 30-hour job: estimate gating vs terminate-and-resume cycling\n" +
		table([]string{"strategy", "completion latency", "overhead/waste CPU-h"}, r.Rows)
}
