package experiments

import (
	"strings"
	"testing"
)

// TestEnginePerfShape pins the engine comparison's qualitative claims
// at a size small enough for CI: incremental evaluation must be exact,
// save a substantial share of the work, and parallel search must be
// deterministic across worker counts. (The committed BENCH_PR2.json
// regenerates the full-size numbers; see EXPERIMENTS.md.)
func TestEnginePerfShape(t *testing.T) {
	r, err := EnginePerf(1, 12, 200, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IncrementalExact {
		t.Error("incremental search result differs from full recompute")
	}
	if !r.ParallelDeterministic {
		t.Error("parallel search not deterministic across worker counts")
	}
	if r.SpeedupVsFull < 2 {
		t.Errorf("incremental speedup vs full recompute = ×%.2f, want >= ×2", r.SpeedupVsFull)
	}
	if r.ReuseFraction <= 0.3 {
		t.Errorf("partials reuse fraction = %.2f, want > 0.3", r.ReuseFraction)
	}
	if s := r.String(); !strings.Contains(s, "Engine performance") {
		t.Errorf("unexpected rendering:\n%s", s)
	}
}
