package experiments

import (
	"fmt"

	"lattice/internal/lrm"
	"lattice/internal/lrm/condor"
	"lattice/internal/lrm/pbs"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// RankingResult is E4: naive vs speed-aware vs full ranking on the
// same workload.
type RankingResult struct {
	Rows    [][]string
	Results map[string]BatchMetrics
}

// SchedulerRanking runs an identical mixed workload under each
// scheduling policy and compares makespan, turnaround and waste —
// Section V-A's claim that the naive algorithm "does not use resources
// very efficiently".
func SchedulerRanking(seed int64) (*RankingResult, error) {
	res := &RankingResult{Results: make(map[string]BatchMetrics)}
	for _, pol := range []metasched.Policy{metasched.PolicyNaive, metasched.PolicySpeedAware, metasched.PolicyFull} {
		sched := metasched.DefaultConfig()
		sched.Policy = pol
		g, err := newGridRun(seed, sched, 120, 150)
		if err != nil {
			return nil, err
		}
		subs := standardWorkload(seed+7, 40, 60)
		m, err := g.runSubmissionsPaced(subs, 15*sim.Minute, 90*sim.Day)
		if err != nil {
			return nil, err
		}
		res.Results[pol.String()] = m
		res.Rows = append(res.Rows, []string{
			pol.String(),
			hours(m.Makespan),
			hours(m.MeanTurnround),
			fmt.Sprintf("%d/%d", m.Completed, m.Jobs),
			fmt.Sprintf("%.0f", m.WastedCPUHours),
			fmt.Sprintf("%d", m.Preemptions),
		})
	}
	return res, nil
}

func (r *RankingResult) String() string {
	return "E4 — grid-level scheduler ranking policies, identical workload\n" +
		table([]string{"policy", "makespan", "mean turnaround", "completed", "wasted CPU-h", "preemptions"}, r.Rows)
}

// GatingResult is E5: the stability criterion on a long-job workload.
type GatingResult struct {
	Rows    [][]string
	Results map[string]BatchMetrics
}

// StabilityGating compares speed-aware scheduling with and without the
// stability gate on a workload that includes many long jobs: without
// the gate, long jobs land on Condor pools and thrash.
func StabilityGating(seed int64) (*GatingResult, error) {
	res := &GatingResult{Results: make(map[string]BatchMetrics)}
	cases := []struct {
		name   string
		policy metasched.Policy
	}{
		{"no gating (speed-aware)", metasched.PolicySpeedAware},
		{"estimate gating (full)", metasched.PolicyFull},
	}
	for _, c := range cases {
		sched := metasched.DefaultConfig()
		sched.Policy = c.policy
		g, err := newGridRun(seed, sched, 120, 150)
		if err != nil {
			return nil, err
		}
		// Isolate the gating *mechanism* from model quality: use exact
		// expected-work estimates (E3 measures the model-quality
		// effect; random forests cannot extrapolate to job sizes far
		// outside their training population).
		g.lat.Scheduler.SetPredictor(oraclePredictor{})
		// Long-job-heavy workload: multi-replicate analyses of large
		// alignments, each 10-35 h on the reference computer, enough
		// of them to overflow the stable clusters so placement policy
		// matters. Arrivals are spaced so the scheduler reacts to
		// evolving load.
		subs := make([]workload.Submission, 30)
		for i := range subs {
			subs[i] = workload.Submission{
				Spec: workload.JobSpec{
					DataType: phylo.Nucleotide, SubstModel: "GTR",
					RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
					NumTaxa: 180 + (i*37)%160, SeqLength: 4800,
					SearchReps: 4, StartingTree: phylo.StartStepwise,
					AttachmentsPerTaxon: 25, Seed: seed + int64(i),
				},
				Replicates: 4,
				UserEmail:  fmt.Sprintf("user%d@lab.edu", i%5),
			}
		}
		m, err := g.runSubmissionsPaced(subs, 20*sim.Minute, 120*sim.Day)
		if err != nil {
			return nil, err
		}
		res.Results[c.name] = m
		res.Rows = append(res.Rows, []string{
			c.name,
			hours(m.Makespan),
			fmt.Sprintf("%d/%d", m.Completed, m.Jobs),
			fmt.Sprintf("%.0f", m.WastedCPUHours),
			fmt.Sprintf("%d", m.Preemptions),
		})
	}
	return res, nil
}

func (r *GatingResult) String() string {
	return "E5 — stability gating (unstable resources refuse jobs estimated > 10 h)\n" +
		table([]string{"configuration", "makespan", "completed", "wasted CPU-h", "preemptions"}, r.Rows)
}

// EstimatorEffectResult is E3b: scheduling with the trained model vs
// estimate-blind.
type EstimatorEffectResult struct {
	Rows    [][]string
	Results map[string]BatchMetrics
}

// SchedulingEffect contrasts the full scheduler with and without the
// runtime model — the paper's claim that CV-quality predictions
// "greatly improve scheduling effectiveness". The workload mixes the
// routine population with the long analyses whose placement the
// estimates actually protect, and the model is trained on a matrix
// covering that spectrum (as the production system's matrix of real
// jobs did).
func SchedulingEffect(seed int64) (*EstimatorEffectResult, error) {
	res := &EstimatorEffectResult{Results: make(map[string]BatchMetrics)}
	longSpec := func(i int) workload.JobSpec {
		return workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "GTR",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
			NumTaxa: 170 + (i*53)%170, SeqLength: 4500,
			SearchReps: 4, StartingTree: phylo.StartStepwise,
			AttachmentsPerTaxon: 25, Seed: seed + int64(1000+i),
		}
	}
	for _, withModel := range []bool{false, true} {
		sched := metasched.DefaultConfig()
		name := "no estimates"
		if withModel {
			name = "random-forest estimates"
		}
		g, err := newGridRun(seed, sched, 0, 150)
		if err != nil {
			return nil, err
		}
		if withModel {
			est, err := estimatorFor(seed, 120, 0)
			if err != nil {
				return nil, err
			}
			// The production matrix covers the big AToL analyses too;
			// add observed runtimes for that job family.
			obsRNG := sim.NewRNG(seed + 2)
			for k := 0; k < 40; k++ {
				spec := longSpec(k * 3)
				if err := est.AddObservation(&spec, workload.ReferenceSeconds(spec.SampleWork(obsRNG))); err != nil {
					return nil, err
				}
			}
			if err := est.Retrain(); err != nil {
				return nil, err
			}
			g.lat.Scheduler.SetPredictor(est)
		}
		subs := standardWorkload(seed+19, 16, 20)
		for i := 0; i < 12; i++ {
			subs = append(subs, workload.Submission{
				Spec: longSpec(i), Replicates: 3,
				UserEmail: fmt.Sprintf("atol%d@lab.edu", i%3),
			})
		}
		m, err := g.runSubmissionsPaced(subs, 15*sim.Minute, 120*sim.Day)
		if err != nil {
			return nil, err
		}
		res.Results[name] = m
		res.Rows = append(res.Rows, []string{
			name,
			hours(m.Makespan),
			hours(m.MeanTurnround),
			fmt.Sprintf("%d/%d", m.Completed, m.Jobs),
			fmt.Sprintf("%.0f", m.WastedCPUHours),
		})
	}
	return res, nil
}

func (r *EstimatorEffectResult) String() string {
	return "E3 — scheduling with vs without a priori runtime estimates\n" +
		table([]string{"configuration", "makespan", "mean turnaround", "completed", "wasted CPU-h"}, r.Rows)
}

// CalibrationResult is E6: measured vs configured resource speeds.
type CalibrationResult struct {
	Rows [][]string
	// MaxRelError is the largest |measured-true|/true across
	// resources.
	MaxRelError float64
}

// SpeedCalibration builds resources of known speeds and recovers them
// with the paper's benchmark-job procedure.
func SpeedCalibration(seed int64) (*CalibrationResult, error) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	res := &CalibrationResult{}
	type target struct {
		name  string
		lrm   lrm.LRM
		true_ float64
	}
	var targets []target
	for _, spec := range []struct {
		name  string
		speed float64
	}{
		{"reference-clone", 1.0}, {"fast-cluster", 2.0}, {"old-cluster", 0.5}, {"mid-cluster", 1.3},
	} {
		c, err := pbs.New(eng, pbs.Config{
			Name: spec.name, Platform: lrm.LinuxX86,
			Nodes: []pbs.NodeClass{{Count: 4, Speed: spec.speed, MemoryMB: 2048}},
		})
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{spec.name, c, spec.speed})
	}
	// An idle Condor pool with heterogeneous machines: calibration
	// averages over its members.
	machines := make([]condor.Machine, 6)
	for i := range machines {
		machines[i] = condor.Machine{
			Speed: 0.6 + 0.2*float64(i%3), MemoryMB: 2048, Platform: lrm.LinuxX86,
			MeanOwnerAway: 1000 * sim.Hour, MeanOwnerBusy: sim.Minute,
		}
	}
	pool, err := condor.New(eng, rng, condor.Config{Name: "hetero-pool", Machines: machines})
	if err != nil {
		return nil, err
	}
	targets = append(targets, target{"hetero-pool", pool, 0.8}) // mean of 0.6/0.8/1.0

	for _, tg := range targets {
		measured, err := metasched.Calibrate(eng, tg.lrm, 600, 4, 10*sim.Day)
		if err != nil {
			return nil, err
		}
		rel := abs(measured-tg.true_) / tg.true_
		if rel > res.MaxRelError {
			res.MaxRelError = rel
		}
		res.Rows = append(res.Rows, []string{
			tg.name,
			fmt.Sprintf("%.2f", tg.true_),
			fmt.Sprintf("%.2f", measured),
			fmt.Sprintf("%.1f%%", 100*rel),
		})
	}
	return res, nil
}

func (r *CalibrationResult) String() string {
	return "E6 — resource speed measurement against the reference computer (speed 1.0)\n" +
		table([]string{"resource", "true speed", "measured", "error"}, r.Rows)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
