package experiments

import (
	"fmt"

	"lattice/internal/beagle"
	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// EnginePerfResult quantifies the likelihood-engine optimizations on a
// real GA tree search: the reference full-recompute engine vs the
// beagle backend with incremental re-evaluation off and on, plus the
// determinism guarantee of parallel population scoring. Work is
// compared in cell updates (the engines' common currency), which is
// hardware-independent and exact.
type EnginePerfResult struct {
	Taxa, Sites, Generations int

	RefWork  float64 // reference engine, full recompute every call
	FullWork float64 // beagle, incremental disabled
	IncWork  float64 // beagle, incremental enabled

	// IncrementalExact reports whether the incremental and full beagle
	// searches returned bit-identical best trees and scores (they run
	// the same trajectory, so anything else is an engine bug).
	IncrementalExact bool
	// ParallelDeterministic reports whether SearchParallel returned
	// bit-identical results with 1 and 3 workers for the same seed.
	ParallelDeterministic bool

	ReuseFraction float64 // share of per-node pruning passes skipped
	CacheHitRate  float64 // transition-matrix cache hit rate

	PatternCompression float64 // alignment sites per unique pattern
	TipCells           int64   // kernel cells fed by tip-column tables
	InternalCells      int64   // kernel cells fed by internal partials
	PmatRecycled       int     // transition buffers reused from the free list
	BufRecycled        int     // partials buffers reused from the free list
	BankHitRate        float64 // per-tree partials-bank hit rate

	SpeedupVsFull float64 // FullWork / IncWork — the incremental win
	SpeedupVsRef  float64 // RefWork / IncWork — win over the seed path
	BestLogL      float64
}

// EnginePerf runs the same GARLI-style search on each engine
// configuration and measures the cell-update cost. The beagle full and
// incremental runs share one RNG seed and therefore one trajectory, so
// their work ratio is the exact incremental saving; the reference run
// (its own engine, same seed) gives the speedup over the seed
// repository's search path.
func EnginePerf(seed int64, ntaxa, nsites, generations int) (*EnginePerfResult, error) {
	rng := sim.NewRNG(seed)
	model, err := phylo.NewGTR([6]float64{1.1, 3.2, 0.8, 1.3, 4.0, 1}, []float64{0.28, 0.22, 0.26, 0.24})
	if err != nil {
		return nil, err
	}
	rates, err := phylo.NewSiteRates(phylo.RateGamma, 0.6, 0, 4)
	if err != nil {
		return nil, err
	}
	names := phylo.TaxonNames(ntaxa)
	truth := phylo.RandomTree(names, 0.08, rng)
	al, err := phylo.SimulateAlignment(truth, model, rates, nsites, rng)
	if err != nil {
		return nil, err
	}
	data, err := al.Compile()
	if err != nil {
		return nil, err
	}
	cfg := phylo.DefaultSearchConfig()
	cfg.MaxGenerations = generations
	cfg.StagnationGenerations = generations
	cfg.AttachmentsPerTaxon = 10

	ref, err := phylo.NewLikelihood(data, model, rates)
	if err != nil {
		return nil, err
	}
	if _, err := phylo.SearchWith(ref, names, cfg, sim.NewRNG(seed)); err != nil {
		return nil, err
	}

	full, err := beagle.New(data, model, rates)
	if err != nil {
		return nil, err
	}
	full.SetIncremental(false)
	resFull, err := phylo.SearchWith(full, names, cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}

	inc, err := beagle.New(data, model, rates)
	if err != nil {
		return nil, err
	}
	resInc, err := phylo.SearchWith(inc, names, cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}

	r := &EnginePerfResult{
		Taxa: ntaxa, Sites: nsites, Generations: generations,
		RefWork:  ref.Work,
		FullWork: resFull.Work,
		IncWork:  resInc.Work,
		IncrementalExact: resInc.BestLogL == resFull.BestLogL &&
			resInc.BestTree.Newick() == resFull.BestTree.Newick(),
		BestLogL: resInc.BestLogL,
	}
	st := inc.Stats()
	r.ReuseFraction = st.ReuseFraction()
	r.CacheHitRate = st.CacheHitRate()
	r.PatternCompression = st.PatternCompression()
	r.TipCells = st.TipCells
	r.InternalCells = st.InternalCells
	r.PmatRecycled = st.PmatRecycled
	r.BufRecycled = st.BufRecycled
	if hm := st.BankHits + st.BankMisses; hm > 0 {
		r.BankHitRate = float64(st.BankHits) / float64(hm)
	}
	if r.IncWork > 0 {
		r.SpeedupVsFull = r.FullWork / r.IncWork
		r.SpeedupVsRef = r.RefWork / r.IncWork
	}

	// Parallel determinism: same seed, 1 vs 3 workers, bit-identical
	// result and exact work accounting.
	factory := func() (phylo.Evaluator, error) { return beagle.New(data, model, rates) }
	pcfg := cfg
	pcfg.SearchReps = 2
	pcfg.MaxGenerations = generations / 2
	pcfg.StagnationGenerations = generations / 2
	var outs []*phylo.SearchResult
	for _, workers := range []int{1, 3} {
		pool, err := phylo.NewEvaluatorPool(workers, factory)
		if err != nil {
			return nil, err
		}
		out, err := phylo.SearchParallel(pool, names, pcfg, sim.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
	}
	r.ParallelDeterministic = outs[0].BestLogL == outs[1].BestLogL &&
		outs[0].Work == outs[1].Work &&
		outs[0].BestTree.Newick() == outs[1].BestTree.Newick()
	return r, nil
}

// String renders the engine comparison table.
func (r *EnginePerfResult) String() string {
	rows := [][]string{
		{"reference (seed path)", fmt.Sprintf("%.3g", r.RefWork), fmt.Sprintf("×%.2f", safeRatio(r.RefWork, r.IncWork))},
		{"beagle, full recompute", fmt.Sprintf("%.3g", r.FullWork), fmt.Sprintf("×%.2f", safeRatio(r.FullWork, r.IncWork))},
		{"beagle, incremental", fmt.Sprintf("%.3g", r.IncWork), "×1.00"},
	}
	check := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "NO"
	}
	tipShare := 0.0
	if tot := r.TipCells + r.InternalCells; tot > 0 {
		tipShare = float64(r.TipCells) / float64(tot)
	}
	return fmt.Sprintf("Engine performance — %d taxa, %d sites, %d generations\n%s"+
		"partials reused: %.1f%%; transition-cache hit rate: %.1f%%\n"+
		"pattern compression: %.2f sites/pattern\n"+
		"kernel cells: %.1f%% tip-specialized (%d tip, %d internal)\n"+
		"zero-alloc recycling: %d transition buffers, %d partials buffers; bank hit rate %.1f%%\n"+
		"incremental bit-identical to full recompute: %s\n"+
		"parallel search deterministic across worker counts: %s\n"+
		"best logL: %.4f\n",
		r.Taxa, r.Sites, r.Generations,
		table([]string{"engine", "cell updates", "work vs incremental"}, rows),
		100*r.ReuseFraction, 100*r.CacheHitRate,
		r.PatternCompression,
		100*tipShare, r.TipCells, r.InternalCells,
		r.PmatRecycled, r.BufRecycled, 100*r.BankHitRate,
		check(r.IncrementalExact), check(r.ParallelDeterministic),
		r.BestLogL)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
