// Package experiments regenerates every quantitative artifact of the
// paper's evaluation: Figure 2 (variable importance), the text's
// headline statistics (~93% variance explained, cross-validation
// quality), and the behavioural claims behind the scheduler design
// (ranking criteria, stability gating, estimate-driven BOINC deadlines
// and work-fetch, replicate bundling, portal-scale batching, system
// scale, continuous retraining, and the checkpoint-cycling alternative
// the paper declined). Each experiment is a pure function from a seed
// to a result struct with a printable table, shared by the benchmark
// suite (bench_test.go) and the gridbench binary.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lattice/internal/boinc"
	"lattice/internal/core"
	"lattice/internal/estimate"
	"lattice/internal/gsbl"
	"lattice/internal/metasched"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// table formats aligned rows.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// hours renders a duration in hours.
func hours(d sim.Duration) string { return fmt.Sprintf("%.1f h", d.Hours()) }

// BatchMetrics summarizes one workload run through a grid.
type BatchMetrics struct {
	Jobs      int
	Completed int
	Failed    int
	Makespan  sim.Duration
	// P95Completion is the time until 95% of jobs finished — the
	// tail-insensitive batch latency (desktop-grid stragglers can
	// stretch the true makespan arbitrarily; both the paper's system
	// and ours reissue them).
	P95Completion sim.Duration
	MeanTurnround sim.Duration
	// UsefulCPUHours and WastedCPUHours aggregate resource-side
	// accounting (reference-scaled CPU time).
	UsefulCPUHours float64
	WastedCPUHours float64
	Preemptions    int
	// Exposition is the grid's final /metrics snapshot in text
	// exposition format — the observability view of the same run,
	// deterministic for a fixed seed.
	Exposition string
}

// gridRun owns one configured Lattice and runs workloads through it.
type gridRun struct {
	lat  *core.Lattice
	seed int64
}

// newGridRun builds a Lattice with the given scheduler config on the
// standard test federation.
func newGridRun(seed int64, sched metasched.Config, trainJobs int, boincHosts int) (*gridRun, error) {
	cfg := core.DefaultConfig(seed)
	cfg.Scheduler = sched
	cfg.TrainingJobs = trainJobs
	for i := range cfg.Resources {
		if cfg.Resources[i].Kind == "boinc" {
			pop := boinc.DefaultPopulation(boincHosts)
			cfg.Resources[i].Population = &pop
		}
	}
	lat, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &gridRun{lat: lat, seed: seed}, nil
}

// runSubmissions pushes the submissions through the grid and collects
// metrics once all jobs are terminal (or the deadline passes).
func (g *gridRun) runSubmissions(subs []workload.Submission, deadline sim.Duration) (BatchMetrics, error) {
	return g.runSubmissionsPaced(subs, 0, deadline)
}

// runSubmissionsPaced spaces submissions by interarrival so the
// scheduler reacts to evolving load instead of one stale MDS snapshot.
func (g *gridRun) runSubmissionsPaced(subs []workload.Submission, interarrival, deadline sim.Duration) (BatchMetrics, error) {
	var batches []*gsbl.Batch
	var submitErr error
	for i, sub := range subs {
		sub := sub
		g.lat.Engine.Schedule(sim.Duration(i)*interarrival, func() {
			b, err := g.lat.SubmitSubmission(sub)
			if err != nil {
				submitErr = err
				return
			}
			batches = append(batches, b)
		})
	}
	g.lat.Engine.RunUntil(g.lat.Engine.Now().Add(sim.Duration(len(subs)) * interarrival))
	if submitErr != nil {
		return BatchMetrics{}, submitErr
	}
	start := g.lat.Engine.Now()
	end := start.Add(deadline)
	for g.lat.Engine.Now() < end {
		g.lat.Engine.RunUntil(g.lat.Engine.Now().Add(6 * sim.Hour))
		if allDone(g.lat, batches) {
			break
		}
	}
	m := BatchMetrics{}
	var lastDone sim.Time
	var turnSum sim.Duration
	var doneTimes []sim.Time
	for _, b := range batches {
		st, err := g.lat.Service.Status(b.ID)
		if err != nil {
			return m, err
		}
		m.Jobs += st.Total
		m.Completed += st.Completed
		m.Failed += st.Failed
		for _, j := range b.Jobs {
			if j.Status == metasched.StatusCompleted {
				if j.CompletedAt > lastDone {
					lastDone = j.CompletedAt
				}
				turnSum += j.CompletedAt.Sub(j.SubmittedAt)
				doneTimes = append(doneTimes, j.CompletedAt)
			}
		}
	}
	if m.Completed > 0 {
		m.Makespan = lastDone.Sub(start)
		m.MeanTurnround = turnSum / sim.Duration(m.Completed)
		sort.Slice(doneTimes, func(i, j int) bool { return doneTimes[i] < doneTimes[j] })
		idx := int(float64(m.Jobs)*0.95) - 1
		if idx >= len(doneTimes) {
			idx = len(doneTimes) - 1
		}
		if idx >= 0 {
			m.P95Completion = doneTimes[idx].Sub(start)
		}
	} else {
		m.Makespan = deadline
		m.P95Completion = deadline
	}
	for _, name := range g.lat.ResourceNames() {
		r, _ := g.lat.Resource(name)
		st := r.Stats()
		m.UsefulCPUHours += st.CPUSeconds / 3600
		m.WastedCPUHours += st.WastedCPU / 3600
		m.Preemptions += st.Preemptions
	}
	m.Exposition = g.lat.Obs.Exposition()
	return m, nil
}

func allDone(lat *core.Lattice, batches []*gsbl.Batch) bool {
	for _, b := range batches {
		st, err := lat.Service.Status(b.ID)
		if err != nil || !st.Done {
			return false
		}
	}
	return true
}

// standardWorkload draws n submissions from the portal population with
// replicate counts clamped for experiment runtime.
func standardWorkload(seed int64, n, maxReplicates int) []workload.Submission {
	gen := workload.NewGenerator(seed)
	subs := make([]workload.Submission, 0, n)
	for i := 0; i < n; i++ {
		sub := gen.Submission()
		if sub.Replicates > maxReplicates {
			sub.Replicates = maxReplicates
		}
		subs = append(subs, sub)
	}
	return subs
}

// oraclePredictor predicts the spec's expected work exactly (modulo
// run-to-run noise) — used where an experiment needs to isolate
// scheduling behaviour from model error.
type oraclePredictor struct{}

func (oraclePredictor) Predict(spec *workload.JobSpec) (float64, error) {
	return workload.ReferenceSeconds(spec.ExpectedWork()), nil
}

// estimatorFor builds a trained estimator outside a Lattice.
func estimatorFor(seed int64, trainJobs, trees int) (*estimate.Estimator, error) {
	cfg := estimate.DefaultConfig()
	cfg.Seed = seed
	if trees > 0 {
		cfg.NumTrees = trees
	}
	return estimate.Bootstrap(cfg, workload.NewGenerator(seed), trainJobs)
}
