package experiments

import (
	"fmt"

	"lattice/internal/boinc"
	"lattice/internal/core"
	"lattice/internal/faults"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// FaultResult is the fault-injection experiment: the same
// 200-replicate submission through the default federation on a calm
// grid and under the default hostile schedule, twice with the same
// seed. It proves the two invariants the resilience layer owes the
// rest of the system — conservation (every job reaches exactly one
// terminal state, faults or not) and determinism (two same-seed
// hostile runs are bit-identical).
type FaultResult struct {
	Jobs int
	// Conserved is true when every journaled job of the hostile run
	// reached exactly one terminal state.
	Conserved bool
	// DigestsEqual is true when the two same-seed hostile runs
	// produced identical journal digests and expositions.
	DigestsEqual bool
	// Digest is the hostile run's journal digest.
	Digest string
	// Injected counts the faults the schedule actually fired, by kind.
	Injected map[faults.Kind]int
	// Results holds the calm ("baseline") and hostile ("faulted")
	// run metrics.
	Results map[string]BatchMetrics
	Rows    [][]string
}

// faultOutcome is one grid run's collected evidence.
type faultOutcome struct {
	m        BatchMetrics
	digest   string
	terminal map[string]int
	jobs     int
	sched    metasched.Stats
	injected map[faults.Kind]int
}

// faultRun pushes the fixed 200-replicate submission through a
// DefaultConfig federation, optionally under a fault schedule, and
// runs until the batch is terminal.
func faultRun(seed int64, sch *faults.Schedule) (*faultOutcome, error) {
	cfg := core.DefaultConfig(seed)
	cfg.TrainingJobs = 60
	cfg.Scheduler.BundleTargetSeconds = 0 // one grid job per replicate
	cfg.Scheduler.StabilityAlpha = 0.2    // learn stability from observed failures
	cfg.Faults = sch
	for i := range cfg.Resources {
		if cfg.Resources[i].Kind == "boinc" {
			pop := boinc.DefaultPopulation(150)
			cfg.Resources[i].Population = &pop
		}
	}
	lat, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	// Hour-scale jobs: the batch stays in flight for days, so every
	// window of the hostile schedule lands on running work.
	sub := workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "GTR",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
			NumTaxa: 48, SeqLength: 2500, SearchReps: 24,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 30, Seed: 9,
		},
		Replicates: 200,
		Bootstrap:  true,
		UserEmail:  "faults@example.edu",
	}
	batch, err := lat.SubmitSubmission(sub)
	if err != nil {
		return nil, err
	}
	start := lat.Engine.Now()
	deadline := start.Add(90 * sim.Day)
	for lat.Engine.Now() < deadline {
		lat.Run(6 * sim.Hour)
		if st, err := lat.Service.Status(batch.ID); err == nil && st.Done {
			break
		}
	}
	st, err := lat.Service.Status(batch.ID)
	if err != nil {
		return nil, err
	}
	if !st.Done {
		return nil, fmt.Errorf("faults: batch not terminal after 90 days (%d/%d done)",
			st.Completed+st.Failed, st.Total)
	}
	out := &faultOutcome{
		digest:   lat.Obs.Journal.Digest(),
		terminal: lat.Obs.Journal.TerminalCounts(),
		jobs:     len(batch.Jobs),
		sched:    lat.Scheduler.Stats(),
	}
	if lat.Faults != nil {
		out.injected = lat.Faults.Injected()
	}
	var lastDone sim.Time
	var turnSum sim.Duration
	for _, j := range batch.Jobs {
		if j.Status == metasched.StatusCompleted {
			if j.CompletedAt > lastDone {
				lastDone = j.CompletedAt
			}
			turnSum += j.CompletedAt.Sub(j.SubmittedAt)
		}
	}
	out.m = BatchMetrics{
		Jobs:      st.Total,
		Completed: st.Completed,
		Failed:    st.Failed,
	}
	if st.Completed > 0 {
		out.m.Makespan = lastDone.Sub(start)
		out.m.MeanTurnround = turnSum / sim.Duration(st.Completed)
	}
	out.m.Exposition = lat.Obs.Exposition()
	return out, nil
}

// FaultOverheadRun executes one scenario grid run — calm when hostile
// is false, under the default schedule when true — so the benchmark
// suite can price the injector (the fault-off vs fault-on artifact).
func FaultOverheadRun(seed int64, hostile bool) (BatchMetrics, error) {
	var sch *faults.Schedule
	if hostile {
		sch = core.DefaultFaultSchedule()
	}
	o, err := faultRun(seed, sch)
	if err != nil {
		return BatchMetrics{}, err
	}
	return o.m, nil
}

// FaultScenario runs the fault-injection experiment: a calm baseline,
// then the default hostile schedule twice with the same seed.
func FaultScenario(seed int64) (*FaultResult, error) {
	base, err := faultRun(seed, nil)
	if err != nil {
		return nil, err
	}
	hostile, err := faultRun(seed, core.DefaultFaultSchedule())
	if err != nil {
		return nil, err
	}
	again, err := faultRun(seed, core.DefaultFaultSchedule())
	if err != nil {
		return nil, err
	}
	r := &FaultResult{
		Jobs:     hostile.jobs,
		Digest:   hostile.digest,
		Injected: hostile.injected,
		Results: map[string]BatchMetrics{
			"baseline": base.m,
			"faulted":  hostile.m,
		},
	}
	r.Conserved = len(hostile.terminal) >= hostile.jobs
	for _, n := range hostile.terminal {
		if n != 1 {
			r.Conserved = false
			break
		}
	}
	r.DigestsEqual = hostile.digest == again.digest &&
		hostile.m.Exposition == again.m.Exposition
	row := func(name string, o *faultOutcome) []string {
		return []string{
			name,
			fmt.Sprintf("%d", o.m.Jobs),
			fmt.Sprintf("%d", o.m.Completed),
			fmt.Sprintf("%d", o.m.Failed),
			hours(o.m.Makespan),
			fmt.Sprintf("%d", o.sched.Requeued),
			fmt.Sprintf("%d", o.sched.SubmitRetries),
			fmt.Sprintf("%d", o.sched.Retries),
		}
	}
	r.Rows = [][]string{row("baseline", base), row("faulted", hostile)}
	return r, nil
}

func (r *FaultResult) String() string {
	s := "Fault injection — one 200-replicate submission, calm vs hostile schedule\n"
	s += table([]string{"config", "jobs", "completed", "failed", "makespan", "requeues", "submit-retries", "retries"}, r.Rows)
	s += "injected:"
	for _, k := range []faults.Kind{
		faults.KindOutage, faults.KindSubmitFail, faults.KindMDSDrop, faults.KindMDSStale,
		faults.KindChurn, faults.KindSlowResult, faults.KindLostResult,
	} {
		if n := r.Injected[k]; n > 0 {
			s += fmt.Sprintf(" %s=%d", k, n)
		}
	}
	s += "\n"
	s += fmt.Sprintf("conservation: every job exactly one terminal state: %s\n", pass(r.Conserved))
	s += fmt.Sprintf("determinism: same-seed hostile digests identical: %s\n", pass(r.DigestsEqual))
	return s
}

func pass(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
