package experiments

import (
	"fmt"

	"lattice/internal/boinc"
	"lattice/internal/lrm"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// boincBatch runs n jobs drawn from the workload population through a
// standalone BOINC project and reports the project statistics plus
// batch latency. deadlineFor chooses each workunit's delay bound;
// estimateFor chooses the rsc_fpops_est analogue (0 = none).
func boincBatch(seed int64, pop boinc.PopulationConfig, jobs int,
	deadlineFor func(refSeconds float64) sim.Duration,
	estimateFor func(refSeconds float64) float64,
	tweak func(*workload.JobSpec),
	horizon sim.Duration,
) (boinc.Stats, sim.Duration, int, error) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	cfg := boinc.DefaultConfig("lattice-boinc")
	srv, err := boinc.NewServer(eng, rng.Stream("server"), cfg)
	if err != nil {
		return boinc.Stats{}, 0, 0, err
	}
	boinc.GeneratePopulation(srv, rng.Stream("pop"), pop)
	gen := workload.NewGenerator(seed + 1)
	done := 0
	var lastDone sim.Time
	for i := 0; i < jobs; i++ {
		spec := gen.Job()
		// Desktop-grid appropriate sizes: hours, not weeks.
		spec.NumTaxa = 10 + spec.NumTaxa%40
		spec.SeqLength = 300 + spec.SeqLength%1500
		if spec.DataType == 2 { // codon stays modest
			spec.SeqLength -= spec.SeqLength % 3
		}
		spec.SearchReps = 1
		if tweak != nil {
			tweak(&spec)
		}
		work := spec.SampleWork(rng.Stream(fmt.Sprintf("w%d", i)))
		ref := workload.ReferenceSeconds(work)
		j := &lrm.Job{
			ID:                  fmt.Sprintf("wu-%04d", i),
			Work:                work,
			MemoryMB:            512,
			EstimatedRefSeconds: estimateFor(ref),
			DelayBound:          deadlineFor(ref),
		}
		j.OnComplete = func(at sim.Time) {
			done++
			if at > lastDone {
				lastDone = at
			}
		}
		if err := srv.Submit(j); err != nil {
			return boinc.Stats{}, 0, 0, err
		}
	}
	// Run until the batch drains (or the horizon passes) so idle-host
	// polling after completion does not pollute the RPC accounting. A
	// non-zero horizon caps the run for steady-state measurements.
	end := sim.Time(120 * sim.Day)
	if horizon > 0 {
		end = sim.Time(horizon)
	}
	for done < jobs && eng.Now() < end {
		eng.RunUntil(eng.Now().Add(12 * sim.Hour))
	}
	latency := lastDone.Sub(0)
	return srv.ProjectStats(), latency, done, nil
}

// DeadlineResult is E7: fixed manual deadlines vs estimate-driven.
type DeadlineResult struct {
	Rows [][]string
	// Latency per configuration.
	Fixed, EstimateDriven sim.Duration
	FixedStats, EstStats  boinc.Stats
}

// BoincDeadlines contrasts the pre-integration practice (one manual
// deadline for the whole batch) with per-workunit deadlines of
// slack × the runtime estimate — Section VI-A's second motivation.
func BoincDeadlines(seed int64) (*DeadlineResult, error) {
	const hosts, jobs = 150, 250
	res := &DeadlineResult{}
	// Accurate estimates exist in both runs (the clients need them
	// for fetch sizing); only the deadline policy differs.
	estimator := func(ref float64) float64 { return ref }

	fixedStats, fixedLat, fixedDone, err := boincBatch(seed, boinc.DefaultPopulation(hosts), jobs,
		func(float64) sim.Duration { return 2 * sim.Week }, estimator, nil, 0)
	if err != nil {
		return nil, err
	}
	estStats, estLat, estDone, err := boincBatch(seed, boinc.DefaultPopulation(hosts), jobs,
		func(ref float64) sim.Duration {
			// Turnaround = client-side buffer wait (up to a day of
			// queued tasks at ~40% duty) plus execution at typical
			// volunteer speed (~0.8×) and duty cycle — so allow two
			// days of pipeline plus 6× the reference runtime.
			return 2*sim.Day + sim.Duration(ref*6)
		}, estimator, nil, 0)
	if err != nil {
		return nil, err
	}
	res.Fixed, res.EstimateDriven = fixedLat, estLat
	res.FixedStats, res.EstStats = fixedStats, estStats
	row := func(name string, st boinc.Stats, lat sim.Duration, done int) []string {
		reissue := 0.0
		if st.ResultsIssued > 0 {
			reissue = float64(st.ResultsTimedOut) / float64(st.ResultsIssued)
		}
		return []string{
			name,
			fmt.Sprintf("%d/%d", done, jobs),
			hours(lat),
			fmt.Sprintf("%.1f%%", 100*reissue),
			fmt.Sprintf("%.0f", st.WastedCPUSeconds/3600),
		}
	}
	res.Rows = append(res.Rows,
		row("manual fixed 2-week deadline", fixedStats, fixedLat, fixedDone),
		row("estimate-driven deadline", estStats, estLat, estDone))
	return res, nil
}

func (r *DeadlineResult) String() string {
	return "E7 — BOINC workunit deadlines: manual fixed vs runtime-estimate-driven\n" +
		table([]string{"deadline policy", "completed", "batch latency", "reissue rate", "wasted CPU-h"}, r.Rows)
}

// WorkFetchResult is E8: scheduler-RPC efficiency with and without
// accurate estimates.
type WorkFetchResult struct {
	Rows [][]string
	// RPCsPerResult for each configuration.
	Blind, Informed float64
}

// WorkFetch measures how accurate estimates let clients fetch the
// right amount of work: without them, the server's fallback guess
// makes hosts check in far more (or less) often — Section VI-A's third
// motivation.
func WorkFetch(seed int64) (*WorkFetchResult, error) {
	// A deep backlog of short jobs on a small host pool: fetch sizing
	// dominates scheduler traffic. Short jobs (~10 min) against the
	// server's 4-hour fallback guess: a blind client fetches a few
	// tasks per RPC instead of dozens.
	const hosts, jobs = 20, 30000 // queue never drains within the horizon
	short := func(spec *workload.JobSpec) {
		spec.DataType = phylo.Nucleotide
		spec.SubstModel = "HKY85"
		spec.RateHet = phylo.RateGamma
		spec.NumRateCats = 4
		spec.GammaShape = 0.6
		spec.NumTaxa = 30
		spec.SeqLength = 2000
	}
	res := &WorkFetchResult{}
	// Churn off: host detachment creates reissue tails that would
	// swamp the fetch-sizing signal this experiment isolates.
	pop := boinc.DefaultPopulation(hosts)
	pop.PDetach = 0
	deadline := func(float64) sim.Duration { return 3 * sim.Day }
	// Steady-state measurement over a fixed 10-day horizon.
	blindStats, _, blindDone, err := boincBatch(seed, pop, jobs, deadline,
		func(float64) float64 { return 0 }, short, 10*sim.Day) // no estimate attached
	if err != nil {
		return nil, err
	}
	infStats, _, infDone, err := boincBatch(seed, pop, jobs, deadline,
		func(ref float64) float64 { return ref }, short, 10*sim.Day)
	if err != nil {
		return nil, err
	}
	rpr := func(st boinc.Stats) float64 {
		if st.ResultsReturned == 0 {
			return 0
		}
		return float64(st.SchedulerRPCs) / float64(st.ResultsReturned)
	}
	res.Blind = rpr(blindStats)
	res.Informed = rpr(infStats)
	row := func(name string, st boinc.Stats, done int) []string {
		return []string{
			name,
			fmt.Sprintf("%d", done),
			fmt.Sprintf("%d", st.SchedulerRPCs),
			fmt.Sprintf("%.2f", rpr(st)),
			fmt.Sprintf("%d", st.EmptyRPCs),
		}
	}
	res.Rows = append(res.Rows,
		row("fallback size guess (no estimates)", blindStats, blindDone),
		row("random-forest estimates", infStats, infDone))
	return res, nil
}

func (r *WorkFetchResult) String() string {
	return "E8 — BOINC work-request sizing: scheduler RPCs per returned result\n" +
		table([]string{"configuration", "completed", "scheduler RPCs", "RPCs/result", "empty RPCs"}, r.Rows)
}
