package experiments

import "testing"

func TestFaultScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation experiment")
	}
	r, err := FaultScenario(11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if !r.Conserved {
		t.Error("conservation violated: a job missed or repeated its terminal state under faults")
	}
	if !r.DigestsEqual {
		t.Error("two same-seed hostile runs diverged (digest or exposition)")
	}
	base := r.Results["baseline"]
	hostile := r.Results["faulted"]
	if base.Completed+base.Failed != base.Jobs || hostile.Completed+hostile.Failed != hostile.Jobs {
		t.Errorf("batches not terminal: baseline %+v, faulted %+v", base, hostile)
	}
	if len(r.Injected) == 0 {
		t.Error("hostile schedule injected no faults")
	}
	for _, k := range []string{"outage", "submit-fail", "churn", "lost-result"} {
		found := false
		for kind, n := range r.Injected {
			if string(kind) == k && n > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fault kind %s never fired in the hostile run", k)
		}
	}
	if r.Digest == "" {
		t.Error("hostile run produced no journal digest")
	}
}
