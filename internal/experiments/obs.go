package experiments

// NamedExposition pairs one experiment configuration with the final
// /metrics snapshot of the grid that ran it.
type NamedExposition struct {
	Name       string
	Exposition string
}

// ObsExpositions extracts per-configuration metrics snapshots from an
// experiment result, in table-row order. Results that do not carry
// per-configuration BatchMetrics return nil. Iterating Rows (rather
// than the Results map) keeps the output order deterministic.
func ObsExpositions(res any) []NamedExposition {
	var rows [][]string
	var byName map[string]BatchMetrics
	switch r := res.(type) {
	case *RankingResult:
		rows, byName = r.Rows, r.Results
	case *GatingResult:
		rows, byName = r.Rows, r.Results
	case *EstimatorEffectResult:
		rows, byName = r.Rows, r.Results
	default:
		return nil
	}
	var out []NamedExposition
	for _, row := range rows {
		if len(row) == 0 {
			continue
		}
		if m, ok := byName[row[0]]; ok && m.Exposition != "" {
			out = append(out, NamedExposition{Name: row[0], Exposition: m.Exposition})
		}
	}
	return out
}
