package experiments

import (
	"testing"
	"time"
)

// fakeClock advances a fixed step per Now call, making elapsed-time
// measurements exactly predictable.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// TestFig2InjectableClock pins the clock seam: with a fake clock
// installed, Fig2's reported build time is exactly the injected step
// (Fig2 reads the clock once before and once after training), not a
// wall-clock measurement.
func TestFig2InjectableClock(t *testing.T) {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	const step = 250 * time.Millisecond
	restore := SetClock(&fakeClock{now: base, step: step})
	defer restore()

	r, err := Fig2(1, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.BuildTime != step {
		t.Errorf("BuildTime = %v, want exactly %v from the injected clock", r.BuildTime, step)
	}
}

// TestSetClockRestore checks the restore closure reinstalls the
// previous clock.
func TestSetClockRestore(t *testing.T) {
	fake := &fakeClock{now: time.Unix(0, 0), step: time.Second}
	restore := SetClock(fake)
	if clock != Clock(fake) {
		t.Fatal("SetClock did not install the fake clock")
	}
	restore()
	if _, ok := clock.(wallClock); !ok {
		t.Fatalf("restore left %T installed, want wallClock", clock)
	}
}
