package experiments

import (
	"fmt"
	"math"
	"time"

	"lattice/internal/estimate"
	"lattice/internal/forest"
	"lattice/internal/workload"
)

// Fig2Result reproduces Figure 2 and the Section VI-D statistics.
type Fig2Result struct {
	TrainJobs  int
	Trees      int
	Importance []forest.ImportanceResult // permutation %IncMSE, descending
	Stats      estimate.ModelStats
	BuildTime  time.Duration
}

// Fig2 trains the runtime model on a generated training matrix of the
// paper's size (150 jobs, 10^4 trees in the full configuration) and
// computes permutation variable importance — experiment E1/E2.
func Fig2(seed int64, trainJobs, trees int) (*Fig2Result, error) {
	start := clock.Now()
	est, err := estimatorFor(seed, trainJobs, trees)
	if err != nil {
		return nil, err
	}
	build := clock.Now().Sub(start)
	imp, err := est.Importance(seed + 1)
	if err != nil {
		return nil, err
	}
	stats, err := est.Stats()
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		TrainJobs:  trainJobs,
		Trees:      trees,
		Importance: imp,
		Stats:      stats,
		BuildTime:  build,
	}, nil
}

// String renders the Figure 2 table.
func (r *Fig2Result) String() string {
	rows := make([][]string, 0, len(r.Importance))
	for _, imp := range r.Importance {
		rows = append(rows, []string{imp.Feature, fmt.Sprintf("%.1f", imp.PctIncMSE)})
	}
	return fmt.Sprintf("Figure 2 — GARLI runtime predictor importance (%d jobs, %d trees)\n%s"+
		"variance explained: %.1f%% (paper: ~93%%); typical error ×%.2f; raw-scale %%Var: %.1f%%\n"+
		"model build time: %v (paper: \"takes very little time to compute\")\n",
		r.TrainJobs, r.Trees,
		table([]string{"predictor", "%IncMSE"}, rows),
		r.Stats.PctVarExplained, r.Stats.TypicalErrorFactor, r.Stats.RawPctVarExplained,
		r.BuildTime.Round(time.Millisecond))
}

// Rank returns a feature's position in the importance ordering.
func (r *Fig2Result) Rank(feature string) int {
	for i, imp := range r.Importance {
		if imp.Feature == feature {
			return i
		}
	}
	return -1
}

// CVResult reproduces the Section VI-D cross-validation claim (E3a).
type CVResult struct {
	TrainJobs int
	Folds     int
	Metrics   estimate.CVMetrics
}

// CrossValidation runs k-fold CV on the training matrix.
func CrossValidation(seed int64, trainJobs, folds int) (*CVResult, error) {
	est, err := estimatorFor(seed, trainJobs, 0)
	if err != nil {
		return nil, err
	}
	m, err := est.CrossValidate(folds)
	if err != nil {
		return nil, err
	}
	return &CVResult{TrainJobs: trainJobs, Folds: folds, Metrics: m}, nil
}

func (r *CVResult) String() string {
	return fmt.Sprintf("E3 — %d-fold cross-validation on %d jobs:\n"+
		"  log-scale correlation: %.3f\n"+
		"  median |relative error|: %.0f%%\n"+
		"  predictions within 2× of actual: %.0f%%\n",
		r.Folds, r.TrainJobs, r.Metrics.Correlation,
		100*r.Metrics.MedianAbsRelError, 100*r.Metrics.WithinFactor2)
}

// AblationMtryResult contrasts random-subspace forests with plain
// bagging (mtry = p), the decorrelation the paper quotes Breiman for.
type AblationMtryResult struct {
	Rows [][]string // mtry, OOB MSE (log scale), %Var
}

// AblationMtry sweeps mtry.
func AblationMtry(seed int64, trainJobs int) (*AblationMtryResult, error) {
	gen := workload.NewGenerator(seed)
	specs, secs := gen.TrainingJobs(trainJobs)
	res := &AblationMtryResult{}
	for _, mtry := range []int{1, 3, 6, 9} {
		cfg := estimate.DefaultConfig()
		cfg.Seed = seed
		cfg.MTry = mtry
		e := estimate.New(cfg)
		for i := range specs {
			if err := e.AddObservation(&specs[i], secs[i]); err != nil {
				return nil, err
			}
		}
		if err := e.Retrain(); err != nil {
			return nil, err
		}
		st, err := e.Stats()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", mtry),
			fmt.Sprintf("%.1f", st.PctVarExplained),
			fmt.Sprintf("×%.2f", st.TypicalErrorFactor),
		})
	}
	return res, nil
}

func (r *AblationMtryResult) String() string {
	return "Ablation — covariate subsampling (mtry; 9 = plain bagging)\n" +
		table([]string{"mtry", "%Var explained", "typical error"}, r.Rows)
}

// AblationForestSizeResult sweeps ensemble size: prediction quality vs
// build time (the paper's 10^4 trees "does not take much computational
// time").
type AblationForestSizeResult struct {
	Rows [][]string
}

// AblationForestSize sweeps the tree count.
func AblationForestSize(seed int64, trainJobs int) (*AblationForestSizeResult, error) {
	res := &AblationForestSizeResult{}
	for _, trees := range []int{100, 1000, 10000} {
		start := clock.Now()
		est, err := estimatorFor(seed, trainJobs, trees)
		if err != nil {
			return nil, err
		}
		build := clock.Now().Sub(start)
		st, err := est.Stats()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", trees),
			fmt.Sprintf("%.1f", st.PctVarExplained),
			fmt.Sprintf("×%.2f", st.TypicalErrorFactor),
			build.Round(time.Millisecond).String(),
		})
	}
	return res, nil
}

func (r *AblationForestSizeResult) String() string {
	return "Ablation — forest size (paper uses 10^4 trees)\n" +
		table([]string{"trees", "%Var explained", "typical error", "build time"}, r.Rows)
}

// AblationImportanceResult contrasts permutation (%IncMSE, the paper's
// Figure 2 measure) with split-gain importance.
type AblationImportanceResult struct {
	Rows [][]string
}

// AblationImportanceMethod compares the two importance measures on the
// same forest.
func AblationImportanceMethod(seed int64, trainJobs int) (*AblationImportanceResult, error) {
	gen := workload.NewGenerator(seed)
	specs, secs := gen.TrainingJobs(trainJobs)
	ds := &forest.Dataset{Schema: estimate.Schema()}
	for i := range specs {
		row := estimate.Features(&specs[i])
		if err := ds.Append(row, logOf(secs[i])); err != nil {
			return nil, err
		}
	}
	f, err := forest.Train(ds, forest.Config{NumTrees: 1000, MTry: 3, MinLeafSize: 5, Seed: seed})
	if err != nil {
		return nil, err
	}
	perm := f.Importance(seed + 1)
	gain := f.GainImportance()
	res := &AblationImportanceResult{}
	for i := range perm {
		res.Rows = append(res.Rows, []string{
			perm[i].Feature,
			fmt.Sprintf("%.1f", perm[i].PctIncMSE),
			fmt.Sprintf("%.1f", gain[i].PctIncMSE),
		})
	}
	return res, nil
}

func (r *AblationImportanceResult) String() string {
	return "Ablation — permutation (%IncMSE, paper's measure) vs split-gain importance\n" +
		table([]string{"predictor", "permutation", "split-gain %"}, r.Rows)
}

func logOf(x float64) float64 { return math.Log(x) }
