package experiments

import "testing"

// TestScaleOutShape runs the full scale experiment at its default
// population (10^5 users, shard counts 1/2/4/8 with same-seed twins,
// plus the 4-shard crash variant) and pins the claims the experiment
// exists to prove: conservation and bit-identical twin digests at
// every shard count, strictly improving makespan 1→2→4, and a shard
// crash that recovers locally and matches its uninterrupted twin.
func TestScaleOutShape(t *testing.T) {
	r, err := ScaleOutSized(1, 100000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 8}
	if len(r.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(r.Points), len(want))
	}
	for i, p := range r.Points {
		if p.Shards != want[i] {
			t.Fatalf("point %d has %d shards, want %d", i, p.Shards, want[i])
		}
		if p.Jobs != r.Users {
			t.Errorf("%d shards: %d grid jobs from %d users", p.Shards, p.Jobs, r.Users)
		}
		if p.Completed+p.Failed != p.Jobs {
			t.Errorf("%d shards: %d+%d terminal of %d jobs", p.Shards, p.Completed, p.Failed, p.Jobs)
		}
		if !p.Conserved {
			t.Errorf("%d shards: conservation violated", p.Shards)
		}
		if !p.TwinMatch {
			t.Errorf("%d shards: same-seed twin digest mismatch", p.Shards)
		}
		if p.Digest == "" {
			t.Errorf("%d shards: empty cluster digest", p.Shards)
		}
	}
	if !r.Monotonic {
		t.Errorf("makespan not strictly improving 1→2→4 shards: %.2f, %.2f, %.2f h",
			r.Points[0].MakespanHours, r.Points[1].MakespanHours, r.Points[2].MakespanHours)
	}
	for i := 1; i < len(r.Points); i++ {
		prev, cur := r.Points[i-1], r.Points[i]
		if cur.MakespanHours > prev.MakespanHours {
			t.Errorf("makespan grew from %d shards (%.2f h) to %d shards (%.2f h)",
				prev.Shards, prev.MakespanHours, cur.Shards, cur.MakespanHours)
		}
		if cur.PeakIngestDepth > prev.PeakIngestDepth {
			t.Errorf("peak ingest depth grew from %d shards (%d) to %d shards (%d)",
				prev.Shards, prev.PeakIngestDepth, cur.Shards, cur.PeakIngestDepth)
		}
		if cur.MeanIngestWaitSeconds > prev.MeanIngestWaitSeconds {
			t.Errorf("mean ingest wait grew from %d shards (%.1f s) to %d shards (%.1f s)",
				prev.Shards, prev.MeanIngestWaitSeconds, cur.Shards, cur.MeanIngestWaitSeconds)
		}
	}

	if !r.CrashLocal {
		t.Error("crash variant: recovery was not local to the killed shard")
	}
	if r.CrashRecoveries < 1 {
		t.Errorf("crash variant: %d recoveries, want at least 1", r.CrashRecoveries)
	}
	if r.CrashRecoveredInputs <= 0 {
		t.Errorf("crash variant: recovered shard replayed %d inputs, want > 0", r.CrashRecoveredInputs)
	}
	if !r.CrashConserved {
		t.Error("crash variant: conservation violated")
	}
	if !r.CrashDigestsEqual {
		t.Error("crash variant: per-shard digests diverged from the uninterrupted twin")
	}
	if r.String() == "" {
		t.Error("empty result rendering")
	}
}
