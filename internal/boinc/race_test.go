package boinc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// TestServerConcurrentStress drives the server the way the grid does,
// under the race detector: the engine dispatches host events on one
// goroutine while submitters, statistics readers and a canceller
// hammer the lrm.LRM surface from others. Completion handlers
// re-enter Submit, pinning the callback-outside-lock contract.
func TestServerConcurrentStress(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(42)
	cfg := DefaultConfig("stress")
	cfg.IdlePollInterval = sim.Hour
	srv, err := NewServer(eng, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A stable population (PDetach 0) so every non-cancelled workunit
	// eventually validates.
	for i := 0; i < 24; i++ {
		srv.AttachHost(&Host{
			ID:            i,
			Speed:         0.5 + 0.1*float64(i%8),
			MemoryMB:      4096,
			MeanOn:        20 * sim.Hour,
			MeanOff:       4 * sim.Hour,
			BufferSeconds: 8 * 3600,
			ReportLatency: 10 * sim.Minute,
		})
	}

	const (
		submitters    = 4
		jobsPerWorker = 30
		nJobs         = submitters * jobsPerWorker
	)
	var completed, failed, chained atomic.Int64

	engineDone := make(chan struct{})
	go func() {
		defer close(engineDone)
		eng.RunUntil(sim.Time(2 * sim.Year))
	}()

	var wg sync.WaitGroup
	newJob := func(id string, onComplete func(sim.Time)) *lrm.Job {
		return &lrm.Job{
			ID:                  id,
			Work:                3600 * lrm.ReferenceCellsPerSecond, // one reference hour
			EstimatedRefSeconds: 3600,
			OnComplete:          onComplete,
			OnFail:              func(sim.Time, string) { failed.Add(1) },
		}
	}
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < jobsPerWorker; i++ {
				id := fmt.Sprintf("job-%d-%d", w, i)
				onComplete := func(sim.Time) { completed.Add(1) }
				if w == 0 {
					// Re-entrant handler: completing one of these
					// submits a follow-up job from inside the engine's
					// completion path.
					chainID := fmt.Sprintf("chain-%d", i)
					onComplete = func(sim.Time) {
						completed.Add(1)
						chain := newJob(chainID, func(sim.Time) { completed.Add(1) })
						if err := srv.Submit(chain); err != nil {
							t.Errorf("chained submit %s: %v", chainID, err)
							return
						}
						chained.Add(1)
					}
				}
				if err := srv.Submit(newJob(id, onComplete)); err != nil {
					t.Errorf("submit %s: %v", id, err)
				}
			}
		}(w)
	}

	// Readers poll every public accessor while the engine runs.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				_ = srv.Info()
				_ = srv.Stats()
				_ = srv.ProjectStats()
				_ = srv.ActiveHosts()
				_ = srv.NumHosts()
			}
		}()
	}

	// A canceller races completion; only cancels acknowledged with
	// true actually removed a live workunit.
	var cancelled atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for w := 0; w < submitters; w++ {
			for i := 0; i < jobsPerWorker; i += 7 {
				if srv.Cancel(fmt.Sprintf("job-%d-%d", w, i)) {
					cancelled.Add(1)
				}
			}
		}
	}()

	wg.Wait()
	<-engineDone
	// Jobs submitted after the first run crossed its deadline are
	// still queued; drain them.
	eng.RunUntil(sim.Time(4 * sim.Year))

	st := srv.ProjectStats()
	wantCreated := nJobs + int(chained.Load())
	if st.WorkunitsCreated != wantCreated {
		t.Errorf("WorkunitsCreated = %d, want %d", st.WorkunitsCreated, wantCreated)
	}
	if int(completed.Load()) != st.WorkunitsDone {
		t.Errorf("OnComplete fired %d times but WorkunitsDone = %d", completed.Load(), st.WorkunitsDone)
	}
	if int(failed.Load()) != st.WorkunitsFailed {
		t.Errorf("OnFail fired %d times but WorkunitsFailed = %d", failed.Load(), st.WorkunitsFailed)
	}
	accounted := st.WorkunitsDone + st.WorkunitsFailed + int(cancelled.Load())
	if accounted != wantCreated {
		t.Errorf("jobs unaccounted for: done %d + failed %d + cancelled %d = %d, want %d",
			st.WorkunitsDone, st.WorkunitsFailed, cancelled.Load(), accounted, wantCreated)
	}
}
