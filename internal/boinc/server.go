package boinc

import (
	"fmt"
	"sync"

	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// Config holds project-level policy.
type Config struct {
	Name string
	// Quorum is the number of matching results required to validate a
	// workunit (classic redundant computing). 1 disables redundancy —
	// the paper's GARLI project relies on its validation mode and
	// reissue instead of multi-result quorums for most batches.
	Quorum int
	// DefaultDelayBound is the workunit deadline applied when a job
	// carries none. Before runtime estimates were integrated, the
	// paper's operators "had to fill in this value manually for each
	// batch of work".
	DefaultDelayBound sim.Duration
	// MaxIssues bounds how many instances of one workunit may be
	// issued before the workunit is failed back to the grid.
	MaxIssues int
	// IdlePollInterval is how often an idle attached client asks for
	// work.
	IdlePollInterval sim.Duration
	// FallbackEstimateSeconds is used to size work requests for jobs
	// without runtime estimates (the pre-estimate era's guess).
	FallbackEstimateSeconds float64
	// FeasibilityCheck makes the scheduler skip sending a result to a
	// host that probably cannot meet its deadline (BOINC's deadline
	// check). Requires estimates to work meaningfully.
	FeasibilityCheck bool
	// MaxTasksPerRPC bounds how many results one work request may
	// receive (BOINC's max_wus_to_send), preventing a single fast
	// client from hoarding the queue.
	MaxTasksPerRPC int
}

// DefaultConfig mirrors a typical small BOINC project.
func DefaultConfig(name string) Config {
	return Config{
		Name:                    name,
		Quorum:                  1,
		DefaultDelayBound:       sim.Week,
		MaxIssues:               8,
		IdlePollInterval:        4 * sim.Hour,
		FallbackEstimateSeconds: 4 * 3600,
		FeasibilityCheck:        true,
		MaxTasksPerRPC:          64,
	}
}

// Stats aggregates project behaviour for the experiments.
type Stats struct {
	WorkunitsCreated int
	WorkunitsDone    int
	WorkunitsFailed  int
	ResultsIssued    int
	ResultsReturned  int
	ResultsLate      int // returned after the workunit completed
	ResultsTimedOut  int // deadline passed, reissued
	SchedulerRPCs    int
	EmptyRPCs        int // RPCs that got no work
	Detached         int
	HostCPUSeconds   float64 // reference CPU-seconds computed by hosts
	WastedCPUSeconds float64 // computed but not needed (late/redundant)
	InfeasibleSkips  int
}

// workunit tracks one grid job inside the project.
type workunit struct {
	job      *lrm.Job
	delay    sim.Duration
	issues   int
	returned int
	done     bool
	failed   bool
	pending  []*result // issued, not yet returned
}

// result is one issued instance of a workunit.
type result struct {
	wu       *workunit
	host     *Host
	issuedAt sim.Time
	deadline sim.Time
	timedOut bool
	lost     bool // host detached; will never return
}

// Server is the BOINC project server. It implements lrm.LRM so the
// grid's scheduler adapter can treat the volunteer pool as one large
// (unstable) resource.
type Server struct {
	eng *sim.Engine
	rng *sim.RNG
	cfg Config

	// mu guards all server and host state. The engine dispatches host
	// events on a single goroutine, but lrm.LRM callers (grid
	// adapters, the meta-scheduler, tests) may submit, cancel and read
	// statistics from other goroutines while the engine runs; every
	// engine-scheduled closure and every public method takes the lock
	// at entry. Job callbacks (OnComplete/OnFail) are invoked after
	// the lock is released so handlers may re-enter the server.
	mu    sync.Mutex
	hosts []*Host
	// unsent holds workunits with capacity for further issues, FIFO.
	unsent  []*workunit
	byJob   map[string]*workunit
	stats   Stats
	obs     *obs.Obs
	ins     boincInstruments
	durable Durability
}

// Durability is the write-ahead-log hook for workunit and result
// state transitions (created, issued, timeout, failed, returned,
// late, done). Called with s.mu held; implementations must not call
// back into the server.
type Durability interface {
	Workunit(at sim.Time, job, state, detail string)
}

// SetDurable installs the durability hook (nil disables it).
func (s *Server) SetDurable(d Durability) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.durable = d
}

// durably records one workunit transition when a hook is installed.
// Callers hold s.mu.
func (s *Server) durably(job, state, detail string) {
	if s.durable != nil {
		s.durable.Workunit(s.eng.Now(), job, state, detail)
	}
}

// boincInstruments holds the project's metric handles; all are
// nil-safe, so an un-wired server records nothing.
type boincInstruments struct {
	issued    *obs.Counter
	returned  *obs.Counter
	late      *obs.Counter
	missed    *obs.Counter
	reissued  *obs.Counter
	wuFailed  *obs.Counter
	validated *obs.Counter
}

// SetObs wires the project to an observability hub: deadline misses,
// reissues, and quorum validations become counters and journal events.
func (s *Server) SetObs(o *obs.Obs) {
	pl := obs.L("project", s.cfg.Name)
	s.obs = o
	s.ins = boincInstruments{
		issued:    o.Counter("lattice_boinc_results_issued_total", "Result instances sent to volunteer hosts", pl),
		returned:  o.Counter("lattice_boinc_results_returned_total", "Result instances returned by hosts", pl),
		late:      o.Counter("lattice_boinc_results_late_total", "Results returned after reissue or completion (wasted)", pl),
		missed:    o.Counter("lattice_boinc_deadline_misses_total", "Results whose delay bound passed before return", pl),
		reissued:  o.Counter("lattice_boinc_reissues_total", "Workunits requeued after a deadline miss", pl),
		wuFailed:  o.Counter("lattice_boinc_workunits_failed_total", "Workunits failed back to the grid (issue limit)", pl),
		validated: o.Counter("lattice_boinc_quorum_validations_total", "Workunits that reached quorum and validated", pl),
	}
}

// NewServer creates a project with no hosts attached.
func NewServer(eng *sim.Engine, rng *sim.RNG, cfg Config) (*Server, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("boinc: project has no name")
	}
	if cfg.Quorum < 1 {
		return nil, fmt.Errorf("boinc: quorum must be >= 1, got %d", cfg.Quorum)
	}
	if cfg.MaxIssues < cfg.Quorum {
		return nil, fmt.Errorf("boinc: MaxIssues %d below quorum %d", cfg.MaxIssues, cfg.Quorum)
	}
	if cfg.DefaultDelayBound <= 0 {
		return nil, fmt.Errorf("boinc: DefaultDelayBound must be positive")
	}
	return &Server{eng: eng, rng: rng, cfg: cfg, byJob: make(map[string]*workunit)}, nil
}

// AttachHost adds a volunteer host to the project and starts its
// availability process. It schedules engine events, so it must be
// called from the setup phase or the engine goroutine, not
// concurrently with the engine run.
func (s *Server) AttachHost(h *Host) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hosts = append(s.hosts, h)
	h.attach(s)
}

// NumHosts returns the number of hosts ever attached.
func (s *Server) NumHosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.hosts)
}

// Churn forcibly detaches up to n attached hosts, in attachment
// order, and returns how many actually left — the fault injector's
// host-churn burst (a project outage, a popular competing project, a
// school holiday emptying a lab). Queued work on departing hosts is
// lost and will be reissued by the server when its deadlines pass,
// exactly as organic PDetach departures are.
func (s *Server) Churn(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	left := 0
	for _, h := range s.hosts {
		if left >= n {
			break
		}
		if h.detached {
			continue
		}
		h.suspend()
		h.on = false
		h.detached = true
		s.stats.Detached++
		for _, t := range h.tasks {
			t.res.lost = true
		}
		h.tasks = nil
		left++
	}
	return left
}

// ActiveHosts returns the number of hosts that have not detached.
func (s *Server) ActiveHosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, h := range s.hosts {
		if !h.detached {
			n++
		}
	}
	return n
}

// Name implements lrm.LRM.
func (s *Server) Name() string { return s.cfg.Name }

// Submit implements lrm.LRM: the job becomes a workunit.
func (s *Server) Submit(j *lrm.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.NeedsMPI {
		return fmt.Errorf("boinc: volunteer hosts cannot run MPI jobs")
	}
	delay := j.DelayBound
	if delay <= 0 {
		delay = s.cfg.DefaultDelayBound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	wu := &workunit{job: j, delay: delay}
	s.byJob[j.ID] = wu
	s.unsent = append(s.unsent, wu)
	s.stats.WorkunitsCreated++
	s.durably(j.ID, "created", "")
	return nil
}

// Cancel implements lrm.LRM.
func (s *Server) Cancel(jobID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	wu, ok := s.byJob[jobID]
	if !ok || wu.done || wu.failed {
		return false
	}
	wu.failed = true // no further issues; in-flight results discarded
	delete(s.byJob, jobID)
	s.removeUnsent(wu)
	return true
}

func (s *Server) removeUnsent(wu *workunit) {
	for i, u := range s.unsent {
		if u == wu {
			s.unsent = append(s.unsent[:i], s.unsent[i+1:]...)
			return
		}
	}
}

// schedulerRPC serves a work request of wantSeconds local execution
// seconds from host h.
func (s *Server) schedulerRPC(h *Host, wantSeconds float64) {
	s.stats.SchedulerRPCs++
	granted := 0.0
	issued := 0
	maxTasks := s.cfg.MaxTasksPerRPC
	if maxTasks <= 0 {
		maxTasks = 1 << 30
	}
	for i := 0; i < len(s.unsent) && granted < wantSeconds && issued < maxTasks; {
		wu := s.unsent[i]
		if wu.done || wu.failed {
			s.unsent = append(s.unsent[:i], s.unsent[i+1:]...)
			continue
		}
		if !s.eligible(h, wu) {
			i++
			continue
		}
		est := wu.job.EstimatedRefSeconds
		if est <= 0 {
			est = s.cfg.FallbackEstimateSeconds
		}
		localEst := est / h.Speed
		if s.cfg.FeasibilityCheck {
			// Effective progress rate is diluted by the host's duty
			// cycle; skip hosts that would blow the deadline.
			duty := float64(h.MeanOn) / float64(h.MeanOn+h.MeanOff)
			if sim.Duration(localEst/duty) > wu.delay {
				s.stats.InfeasibleSkips++
				i++
				continue
			}
		}
		s.issue(wu, h)
		granted += localEst
		issued++
		if len(wu.pending) >= s.cfg.Quorum {
			// Enough live instances in flight; stop offering this
			// workunit until a deadline miss frees it up.
			s.unsent = append(s.unsent[:i], s.unsent[i+1:]...)
		} else {
			i++
		}
	}
	if issued == 0 {
		s.stats.EmptyRPCs++
	}
}

// eligible checks platform/memory compatibility and that the host does
// not already hold an instance of this workunit.
func (s *Server) eligible(h *Host, wu *workunit) bool {
	j := wu.job
	if j.MemoryMB > h.MemoryMB {
		return false
	}
	if len(j.Platforms) > 0 {
		ok := false
		for _, p := range j.Platforms {
			if p == h.Platform {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, r := range wu.pending {
		if r.host == h {
			return false
		}
	}
	return true
}

// issue sends one result instance of wu to host h and arms the
// deadline timer.
func (s *Server) issue(wu *workunit, h *Host) {
	r := &result{
		wu:       wu,
		host:     h,
		issuedAt: s.eng.Now(),
		deadline: s.eng.Now().Add(wu.delay),
	}
	wu.issues++
	wu.pending = append(wu.pending, r)
	s.stats.ResultsIssued++
	s.ins.issued.Inc()
	s.durably(wu.job.ID, "issued", fmt.Sprintf("issue %d", wu.issues))
	h.tasks = append(h.tasks, &task{res: r, remainingWork: wu.job.Work})
	if len(h.tasks) == 1 {
		h.resume()
	}
	s.eng.ScheduleAt(r.deadline, func() {
		s.mu.Lock()
		notify := s.deadlinePassed(r)
		s.mu.Unlock()
		if notify != nil {
			notify()
		}
	})
}

// deadlinePassed reissues a workunit whose result never came back.
// Called with s.mu held; the returned closure (the job's failure
// callback, if the workunit is out of issues) must be invoked after
// the lock is released.
func (s *Server) deadlinePassed(r *result) (notify func()) {
	if r.timedOut {
		return nil
	}
	wu := r.wu
	if wu.done || wu.failed {
		return nil
	}
	// Still pending?
	stillPending := false
	for _, p := range wu.pending {
		if p == r {
			stillPending = true
			break
		}
	}
	if !stillPending {
		return nil
	}
	r.timedOut = true
	s.stats.ResultsTimedOut++
	s.ins.missed.Inc()
	s.durably(wu.job.ID, "timeout", fmt.Sprintf("issue %d", wu.issues))
	wu.removePending(r)
	// Drop the task from the host queue if the host still holds it.
	if !r.lost {
		r.host.dropTask(r)
	}
	if wu.issues >= s.cfg.MaxIssues {
		wu.failed = true
		s.stats.WorkunitsFailed++
		s.ins.wuFailed.Inc()
		s.durably(wu.job.ID, "failed", "too many errors")
		s.removeUnsent(wu)
		if fail := wu.job.OnFail; fail != nil {
			now := s.eng.Now()
			return func() { fail(now, "boinc: too many errors (may have bug)") }
		}
		return nil
	}
	// Back to the unsent queue for reissue.
	s.ins.reissued.Inc()
	s.obs.Record(wu.job.Batch, wu.job.ID, obs.StageReissue, s.cfg.Name,
		fmt.Sprintf("deadline passed, issue %d/%d", wu.issues, s.cfg.MaxIssues))
	s.requeue(wu)
	return nil
}

func (s *Server) requeue(wu *workunit) {
	for _, u := range s.unsent {
		if u == wu {
			return
		}
	}
	s.unsent = append(s.unsent, wu)
}

func (wu *workunit) removePending(r *result) {
	for i, p := range wu.pending {
		if p == r {
			wu.pending = append(wu.pending[:i], wu.pending[i+1:]...)
			return
		}
	}
}

// dropTask removes a timed-out task from the host's queue (the client
// would abort it at its next scheduler contact).
func (h *Host) dropTask(r *result) {
	for i, t := range h.tasks {
		if t.res == r {
			if i == 0 && h.doneEv != 0 {
				h.suspend()
				h.tasks = h.tasks[1:]
				h.resume()
			} else {
				h.tasks = append(h.tasks[:i], h.tasks[i+1:]...)
			}
			return
		}
	}
}

// receiveResult handles a returned result. Called with s.mu held; the
// returned closure (the job's completion callback, if the workunit
// just validated) must be invoked after the lock is released.
func (s *Server) receiveResult(r *result) (notify func()) {
	s.stats.ResultsReturned++
	s.ins.returned.Inc()
	wu := r.wu
	s.durably(wu.job.ID, "returned", "")
	if r.timedOut || wu.done || wu.failed {
		// Arrived after reissue or completion: wasted computation.
		s.stats.ResultsLate++
		s.ins.late.Inc()
		s.durably(wu.job.ID, "late", "")
		s.stats.WastedCPUSeconds += wu.job.Work / lrm.ReferenceCellsPerSecond
		return nil
	}
	wu.removePending(r)
	wu.returned++
	if wu.returned < s.cfg.Quorum {
		return nil
	}
	wu.done = true
	s.stats.WorkunitsDone++
	s.ins.validated.Inc()
	s.durably(wu.job.ID, "done", fmt.Sprintf("%d/%d results", wu.returned, s.cfg.Quorum))
	s.obs.Record(wu.job.Batch, wu.job.ID, obs.StageQuorum, s.cfg.Name,
		fmt.Sprintf("%d/%d results", wu.returned, s.cfg.Quorum))
	// Redundant copies beyond the first are overhead by design.
	if s.cfg.Quorum > 1 {
		s.stats.WastedCPUSeconds += float64(s.cfg.Quorum-1) * wu.job.Work / lrm.ReferenceCellsPerSecond
	}
	s.removeUnsent(wu)
	if complete := wu.job.OnComplete; complete != nil {
		now := s.eng.Now()
		return func() { complete(now) }
	}
	return nil
}

// Info implements lrm.LRM: the volunteer pool summarized as one
// resource for MDS.
func (s *Server) Info() lrm.Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := lrm.Info{
		Name:   s.cfg.Name,
		Kind:   "boinc",
		Stable: false,
	}
	seen := map[lrm.Platform]bool{}
	for _, h := range s.hosts {
		if h.detached {
			continue
		}
		// The pool's deliverable parallelism is the hosts currently
		// on; attached-but-off machines are not capacity right now.
		if h.on {
			info.TotalCPUs++
			if len(h.tasks) == 0 {
				info.FreeCPUs++
			}
		}
		if len(h.tasks) > 0 {
			info.RunningJobs++
		}
		if h.MemoryMB > info.NodeMemoryMB {
			info.NodeMemoryMB = h.MemoryMB
		}
		if !seen[h.Platform] {
			seen[h.Platform] = true
			info.Platforms = append(info.Platforms, h.Platform)
		}
	}
	info.QueuedJobs = len(s.unsent)
	return info
}

// Stats implements lrm.LRM (extended BOINC statistics are available
// via ProjectStats).
func (s *Server) Stats() lrm.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return lrm.Stats{
		Completed:  s.stats.WorkunitsDone,
		Failed:     s.stats.WorkunitsFailed,
		CPUSeconds: s.stats.HostCPUSeconds - s.stats.WastedCPUSeconds,
		WastedCPU:  s.stats.WastedCPUSeconds,
	}
}

// ProjectStats returns the full BOINC accounting.
func (s *Server) ProjectStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
