package boinc

import (
	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// PopulationConfig shapes a synthetic volunteer host population. The
// defaults mirror well-known desktop-grid measurements: heavy-tailed
// speeds, mostly-Windows platforms, duty cycles well under 100%, and a
// slow trickle of volunteers leaving.
type PopulationConfig struct {
	Hosts int
	// SpeedMedian and SpeedSigma parameterize the log-normal host
	// speed distribution (relative to the reference computer).
	SpeedMedian float64
	SpeedSigma  float64
	// MeanOn and MeanOff set average availability periods.
	MeanOn  sim.Duration
	MeanOff sim.Duration
	// BufferSeconds is the client work-buffer target.
	BufferSeconds float64
	// PDetach is the per-off-period detach probability.
	PDetach float64
}

// DefaultPopulation returns a realistic volunteer population shape.
func DefaultPopulation(hosts int) PopulationConfig {
	return PopulationConfig{
		Hosts:         hosts,
		SpeedMedian:   0.8,
		SpeedSigma:    0.5,
		MeanOn:        10 * sim.Hour,
		MeanOff:       14 * sim.Hour,
		BufferSeconds: 12 * 3600,
		PDetach:       0.002,
	}
}

// GeneratePopulation attaches cfg.Hosts synthetic volunteers to the
// server, deterministically from rng.
func GeneratePopulation(s *Server, rng *sim.RNG, cfg PopulationConfig) {
	for i := 0; i < cfg.Hosts; i++ {
		h := &Host{
			ID:            i,
			Speed:         rng.LogNormal(0, cfg.SpeedSigma) * cfg.SpeedMedian,
			MemoryMB:      pickMemory(rng),
			Platform:      pickPlatform(rng),
			MeanOn:        scaleDur(rng, cfg.MeanOn),
			MeanOff:       scaleDur(rng, cfg.MeanOff),
			BufferSeconds: cfg.BufferSeconds * rng.Uniform(0.5, 2),
			ReportLatency: sim.Duration(rng.Uniform(60, 4*3600)),
			PDetach:       cfg.PDetach,
		}
		s.AttachHost(h)
	}
}

// pickPlatform follows the classic volunteer-computing platform mix.
func pickPlatform(rng *sim.RNG) lrm.Platform {
	switch rng.Choice([]float64{0.82, 0.10, 0.08}) {
	case 0:
		return lrm.WindowsX86
	case 1:
		return lrm.LinuxX86
	default:
		return lrm.DarwinX86
	}
}

// pickMemory draws host memory from typical 2011-era desktop classes.
func pickMemory(rng *sim.RNG) int {
	classes := []int{1024, 2048, 4096, 8192}
	return classes[rng.Choice([]float64{0.2, 0.4, 0.3, 0.1})]
}

// scaleDur jitters a mean duration ±50% per host.
func scaleDur(rng *sim.RNG, d sim.Duration) sim.Duration {
	return sim.Duration(float64(d) * rng.Uniform(0.5, 1.5))
}
