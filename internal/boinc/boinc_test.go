package boinc

import (
	"fmt"
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// testProject builds a server with n reliable, always-on-ish hosts.
func testProject(t *testing.T, n int, cfg Config) (*sim.Engine, *Server) {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	s, err := NewServer(eng, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.AttachHost(&Host{
			ID: i, Speed: 1.0, MemoryMB: 4096, Platform: lrm.WindowsX86,
			MeanOn: 20 * sim.Hour, MeanOff: 2 * sim.Hour,
			BufferSeconds: 8 * 3600, ReportLatency: sim.Minute,
		})
	}
	return eng, s
}

// wu returns a job of the given reference-seconds with an accurate
// estimate attached.
func wu(id string, refSeconds float64) *lrm.Job {
	return &lrm.Job{
		ID:                  id,
		Work:                refSeconds * lrm.ReferenceCellsPerSecond,
		MemoryMB:            256,
		EstimatedRefSeconds: refSeconds,
		Platforms:           []lrm.Platform{lrm.WindowsX86, lrm.LinuxX86, lrm.DarwinX86},
	}
}

func TestBatchCompletes(t *testing.T) {
	eng, s := testProject(t, 20, DefaultConfig("test"))
	done := 0
	for i := 0; i < 100; i++ {
		j := wu(fmt.Sprintf("j%d", i), 1800)
		j.OnComplete = func(sim.Time) { done++ }
		j.OnFail = func(_ sim.Time, r string) { t.Errorf("workunit failed: %s", r) }
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(30 * sim.Day))
	if done != 100 {
		t.Fatalf("%d of 100 workunits completed", done)
	}
	st := s.ProjectStats()
	if st.SchedulerRPCs == 0 || st.ResultsIssued < 100 {
		t.Errorf("implausible stats: %+v", st)
	}
}

func TestDetachingHostsTriggerReissue(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(2)
	cfg := DefaultConfig("churny")
	s, err := NewServer(eng, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hosts detach frequently, losing assigned work.
	for i := 0; i < 40; i++ {
		s.AttachHost(&Host{
			ID: i, Speed: 1.0, MemoryMB: 2048, Platform: lrm.WindowsX86,
			MeanOn: 6 * sim.Hour, MeanOff: 6 * sim.Hour,
			BufferSeconds: 4 * 3600, ReportLatency: sim.Minute,
			PDetach: 0.15,
		})
	}
	done := 0
	for i := 0; i < 60; i++ {
		j := wu(fmt.Sprintf("j%d", i), 3600)
		j.DelayBound = 2 * sim.Day
		j.OnComplete = func(sim.Time) { done++ }
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(60 * sim.Day))
	st := s.ProjectStats()
	if st.Detached == 0 {
		t.Fatal("no hosts detached; churn model broken")
	}
	if st.ResultsTimedOut == 0 {
		t.Fatal("no deadline timeouts despite detaching hosts")
	}
	if done < 55 {
		t.Errorf("only %d of 60 workunits completed despite reissue", done)
	}
}

// TestChurnBurstReissueCompletesQuorum is the fault-injection
// contract: a churn burst detaches every host holding an instance of
// an in-flight quorum-2 workunit, replacements attach, and the unit
// must still validate via deadline-miss reissue.
func TestChurnBurstReissueCompletesQuorum(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(3)
	cfg := DefaultConfig("churnburst")
	cfg.Quorum = 2
	s, err := NewServer(eng, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hub := obs.New(eng)
	s.SetObs(hub)
	attach := func(id int) {
		s.AttachHost(&Host{
			ID: id, Speed: 1.0, MemoryMB: 4096, Platform: lrm.WindowsX86,
			MeanOn: 200 * sim.Hour, MeanOff: sim.Minute,
			BufferSeconds: 8 * 3600, ReportLatency: sim.Minute,
		})
	}
	attach(0)
	attach(1)
	done := 0
	j := wu("burst", 3600)
	j.DelayBound = 4 * sim.Hour
	j.OnComplete = func(sim.Time) { done++ }
	j.OnFail = func(_ sim.Time, r string) { t.Errorf("workunit failed: %s", r) }
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	// Mid-computation, both volunteers vanish at once; two fresh hosts
	// join shortly after.
	eng.Schedule(30*sim.Minute, func() {
		if n := s.Churn(2); n != 2 {
			t.Errorf("Churn(2) detached %d hosts", n)
		}
		attach(100)
		attach(101)
	})
	eng.RunUntil(sim.Time(10 * sim.Day))
	if done != 1 {
		t.Fatalf("workunit completed %d times, want exactly once via reissue", done)
	}
	st := s.ProjectStats()
	if st.Detached != 2 {
		t.Errorf("Detached = %d, want 2", st.Detached)
	}
	if st.ResultsTimedOut < 2 {
		t.Errorf("ResultsTimedOut = %d, want >= 2 (both lost instances)", st.ResultsTimedOut)
	}
	if st.ResultsIssued < 4 {
		t.Errorf("ResultsIssued = %d, want >= 4 (initial pair + reissued pair)", st.ResultsIssued)
	}
	pl := obs.L("project", "churnburst")
	if v := hub.Counter("lattice_boinc_reissues_total", "", pl).Value(); v < 1 {
		t.Errorf("reissue counter = %g, want >= 1", v)
	}
	if v := hub.Counter("lattice_boinc_deadline_misses_total", "", pl).Value(); v < 2 {
		t.Errorf("deadline-miss counter = %g, want >= 2", v)
	}
	if v := hub.Counter("lattice_boinc_quorum_validations_total", "", pl).Value(); v != 1 {
		t.Errorf("validation counter = %g, want 1", v)
	}
}

// TestChurnSkipsDetachedHosts pins Churn's bookkeeping: it only
// detaches live hosts and reports how many actually left.
func TestChurnSkipsDetachedHosts(t *testing.T) {
	eng, s := testProject(t, 3, DefaultConfig("small"))
	_ = eng
	if n := s.Churn(2); n != 2 {
		t.Fatalf("first Churn(2) = %d, want 2", n)
	}
	if n := s.Churn(5); n != 1 {
		t.Errorf("second Churn(5) = %d, want 1 (only one live host left)", n)
	}
	if n := s.Churn(1); n != 0 {
		t.Errorf("third Churn(1) = %d, want 0", n)
	}
	if st := s.ProjectStats(); st.Detached != 3 {
		t.Errorf("Detached = %d, want 3", st.Detached)
	}
}

func TestQuorumValidation(t *testing.T) {
	cfg := DefaultConfig("redundant")
	cfg.Quorum = 2
	eng, s := testProject(t, 10, cfg)
	done := 0
	j := wu("q", 600)
	j.OnComplete = func(sim.Time) { done++ }
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(10 * sim.Day))
	if done != 1 {
		t.Fatalf("workunit completed %d times, want exactly once", done)
	}
	st := s.ProjectStats()
	if st.ResultsIssued < 2 {
		t.Errorf("quorum 2 issued only %d results", st.ResultsIssued)
	}
	if st.WastedCPUSeconds <= 0 {
		t.Error("redundant computing should record wasted CPU")
	}
}

func TestTightDeadlineCausesTimeouts(t *testing.T) {
	// Hosts with ~50% duty cycle and a deadline shorter than typical
	// turnaround: expect reissues, but completion eventually.
	eng := sim.NewEngine()
	rng := sim.NewRNG(3)
	cfg := DefaultConfig("tight")
	cfg.FeasibilityCheck = false // force the bad decision
	s, err := NewServer(eng, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.AttachHost(&Host{
			ID: i, Speed: 0.5, MemoryMB: 2048, Platform: lrm.WindowsX86,
			MeanOn: 4 * sim.Hour, MeanOff: 12 * sim.Hour,
			BufferSeconds: 24 * 3600, ReportLatency: sim.Hour,
		})
	}
	for i := 0; i < 20; i++ {
		j := wu(fmt.Sprintf("j%d", i), 4*3600) // 8 h on these hosts
		j.DelayBound = 6 * sim.Hour            // unrealistic deadline
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(30 * sim.Day))
	st := s.ProjectStats()
	if st.ResultsTimedOut == 0 {
		t.Error("unrealistically tight deadlines produced no timeouts")
	}
}

func TestFeasibilityCheckAvoidsSlowHosts(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(4)
	cfg := DefaultConfig("feas")
	s, err := NewServer(eng, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One fast, one very slow host.
	s.AttachHost(&Host{ID: 0, Speed: 2.0, MemoryMB: 2048, Platform: lrm.WindowsX86,
		MeanOn: 100 * sim.Hour, MeanOff: sim.Hour, BufferSeconds: 40 * 3600, ReportLatency: sim.Minute})
	s.AttachHost(&Host{ID: 1, Speed: 0.05, MemoryMB: 2048, Platform: lrm.WindowsX86,
		MeanOn: 100 * sim.Hour, MeanOff: sim.Hour, BufferSeconds: 40 * 3600, ReportLatency: sim.Minute})
	for i := 0; i < 6; i++ {
		j := wu(fmt.Sprintf("j%d", i), 8*3600)
		j.DelayBound = 1 * sim.Day // slow host would need ~7 days
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(20 * sim.Day))
	st := s.ProjectStats()
	if st.InfeasibleSkips == 0 {
		t.Error("feasibility check never skipped the slow host")
	}
	if st.ResultsTimedOut > 2 {
		t.Errorf("%d timeouts despite feasibility checking", st.ResultsTimedOut)
	}
}

func TestWorkRequestSizing(t *testing.T) {
	// With accurate estimates, a host should fetch about its buffer's
	// worth of work per RPC rather than one task at a time.
	cfg := DefaultConfig("sizing")
	eng, s := testProject(t, 1, cfg)
	for i := 0; i < 32; i++ {
		if err := s.Submit(wu(fmt.Sprintf("j%d", i), 1800)); err != nil { // 0.5 h each
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(12 * sim.Hour))
	h := s.hosts[0]
	// Buffer 8 h, tasks 0.5 h: the first fetch should have grabbed
	// roughly 16 tasks.
	if got := len(h.tasks); got < 10 {
		t.Errorf("host queue holds %d tasks; estimate-driven fetch should batch ~16", got)
	}
}

func TestCancelWorkunit(t *testing.T) {
	eng, s := testProject(t, 2, DefaultConfig("cancel"))
	j := wu("c", 36000)
	completed := false
	j.OnComplete = func(sim.Time) { completed = true }
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if !s.Cancel("c") {
		t.Fatal("cancel failed")
	}
	if s.Cancel("c") {
		t.Error("double cancel returned true")
	}
	eng.RunUntil(sim.Time(5 * sim.Day))
	if completed {
		t.Error("cancelled workunit completed")
	}
}

func TestServerValidation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	if _, err := NewServer(eng, rng, Config{Name: ""}); err == nil {
		t.Error("expected error for empty name")
	}
	cfg := DefaultConfig("x")
	cfg.Quorum = 0
	if _, err := NewServer(eng, rng, cfg); err == nil {
		t.Error("expected error for zero quorum")
	}
	cfg = DefaultConfig("x")
	cfg.MaxIssues = 0
	if _, err := NewServer(eng, rng, cfg); err == nil {
		t.Error("expected error for MaxIssues below quorum")
	}
	ok, err := NewServer(eng, rng, DefaultConfig("ok"))
	if err != nil {
		t.Fatal(err)
	}
	mpi := wu("m", 60)
	mpi.NeedsMPI = true
	if err := ok.Submit(mpi); err == nil {
		t.Error("BOINC accepted an MPI job")
	}
}

func TestGeneratedPopulation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	s, err := NewServer(eng, rng, DefaultConfig("pop"))
	if err != nil {
		t.Fatal(err)
	}
	GeneratePopulation(s, rng, DefaultPopulation(300))
	if s.NumHosts() != 300 {
		t.Fatalf("attached %d hosts", s.NumHosts())
	}
	plats := map[lrm.Platform]int{}
	for _, h := range s.hosts {
		if h.Speed <= 0 {
			t.Fatal("non-positive host speed")
		}
		plats[h.Platform]++
	}
	if plats[lrm.WindowsX86] < 150 {
		t.Errorf("windows hosts = %d of 300; should dominate", plats[lrm.WindowsX86])
	}
	if len(plats) < 3 {
		t.Errorf("platform diversity missing: %v", plats)
	}
	// The population should actually process work.
	done := 0
	for i := 0; i < 50; i++ {
		j := wu(fmt.Sprintf("j%d", i), 900)
		j.MemoryMB = 512
		j.OnComplete = func(sim.Time) { done++ }
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(20 * sim.Day))
	if done < 48 {
		t.Errorf("generated population completed only %d of 50", done)
	}
}

func TestInfoAggregation(t *testing.T) {
	eng, s := testProject(t, 25, DefaultConfig("info"))
	eng.RunUntil(sim.Time(2 * sim.Day))
	info := s.Info()
	if info.Kind != "boinc" || info.Stable {
		t.Errorf("info misdescribes BOINC: %+v", info)
	}
	// Capacity counts only hosts that are currently on; with ~91%
	// duty cycle most of the 25 should be.
	if info.TotalCPUs < 10 || info.TotalCPUs > 25 {
		t.Errorf("TotalCPUs = %d, want most of the 25 attached hosts", info.TotalCPUs)
	}
	if s.NumHosts() != 25 {
		t.Errorf("NumHosts = %d", s.NumHosts())
	}
}
