// Package boinc simulates a BOINC volunteer-computing project: a
// server that manages workunits with deadlines, reissue and optional
// redundancy, and a population of volunteer hosts that fetch work,
// compute while their owners let them, checkpoint across availability
// gaps, and sometimes disappear entirely. It is the desktop-grid half
// of the paper's two-model system and the substrate for its
// BOINC-specific scheduling experiments (deadline selection from
// runtime estimates, work-request sizing, reissue behaviour).
package boinc

import (
	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// Host is one volunteer computer attached to the project.
type Host struct {
	ID int
	// Speed relative to the reference computer while computing.
	Speed float64
	// MemoryMB bounds the workunits the host can accept.
	MemoryMB int
	Platform lrm.Platform
	// MeanOn and MeanOff parameterize the exponential availability
	// process: periods during which BOINC may compute vs periods the
	// machine is off or the user has suspended computation.
	MeanOn, MeanOff sim.Duration
	// BufferSeconds is how much estimated work (in local execution
	// seconds) the client tries to keep queued.
	BufferSeconds float64
	// ReportLatency is the extra delay between finishing a task and
	// the next scheduler connection that reports it.
	ReportLatency sim.Duration
	// PDetach is the per-off-period probability that the volunteer
	// leaves the project for good, taking queued work with them —
	// the reason deadlines and reissue exist.
	PDetach float64

	srv      *Server
	on       bool
	detached bool
	tasks    []*task // head is the running task
	doneEv   sim.EventID
	pollEv   sim.EventID
	// resumeAt tracks when the running task last (re)started.
	startedAt sim.Time
}

// task is one assigned result instance being computed.
type task struct {
	res           *result
	remainingWork float64
}

// attach wires the host into the server's simulation.
func (h *Host) attach(s *Server) {
	h.srv = s
	h.on = false
	s.eng.Schedule(s.rng.ExpDuration(h.MeanOff), h.turnOn)
}

// turnOn and turnOff are engine-scheduled entry points: they run on
// the engine goroutine and take the server lock before touching host
// or server state.
func (h *Host) turnOn() {
	h.srv.mu.Lock()
	defer h.srv.mu.Unlock()
	if h.detached {
		return
	}
	h.on = true
	h.srv.eng.Schedule(h.srv.rng.ExpDuration(h.MeanOn), h.turnOff)
	h.maybeFetchWork()
	h.resume()
}

func (h *Host) turnOff() {
	h.srv.mu.Lock()
	defer h.srv.mu.Unlock()
	if h.detached {
		return
	}
	h.on = false
	h.suspend()
	if h.srv.rng.Bool(h.PDetach) {
		// Volunteer leaves the project; queued tasks are lost and
		// will time out on the server.
		h.detached = true
		h.srv.stats.Detached++
		for _, t := range h.tasks {
			t.res.lost = true
		}
		h.tasks = nil
		return
	}
	h.srv.eng.Schedule(h.srv.rng.ExpDuration(h.MeanOff), h.turnOn)
}

// suspend checkpoints the running task (the paper's special GARLI
// build adds exactly this: BOINC-visible checkpointing so work
// survives client suspensions).
func (h *Host) suspend() {
	if h.doneEv != 0 {
		h.srv.eng.Cancel(h.doneEv)
		h.doneEv = 0
		elapsed := h.srv.eng.Now().Sub(h.startedAt)
		if len(h.tasks) > 0 {
			h.tasks[0].remainingWork -= elapsed.Seconds() * h.Speed * lrm.ReferenceCellsPerSecond
			if h.tasks[0].remainingWork < 0 {
				h.tasks[0].remainingWork = 0
			}
		}
	}
	if h.pollEv != 0 {
		h.srv.eng.Cancel(h.pollEv)
		h.pollEv = 0
	}
}

// resume continues the head task from its checkpoint. It is a no-op
// when a task is already executing.
func (h *Host) resume() {
	if !h.on || h.detached || h.doneEv != 0 {
		return
	}
	if len(h.tasks) == 0 {
		// Nothing to do: poll the scheduler periodically while on.
		if h.pollEv == 0 {
			h.pollEv = h.srv.eng.Schedule(h.srv.cfg.IdlePollInterval, func() {
				h.srv.mu.Lock()
				defer h.srv.mu.Unlock()
				h.pollEv = 0
				h.maybeFetchWork()
				h.resume()
			})
		}
		return
	}
	t := h.tasks[0]
	h.startedAt = h.srv.eng.Now()
	dur := sim.Duration(t.remainingWork / (h.Speed * lrm.ReferenceCellsPerSecond))
	h.doneEv = h.srv.eng.Schedule(dur, func() {
		h.srv.mu.Lock()
		defer h.srv.mu.Unlock()
		h.doneEv = 0
		h.tasks = h.tasks[1:]
		h.srv.stats.HostCPUSeconds += t.res.wu.job.Work / lrm.ReferenceCellsPerSecond
		// Report after the host's usual reporting latency.
		res := t.res
		h.srv.eng.Schedule(h.ReportLatency, func() {
			srv := h.srv
			srv.mu.Lock()
			notify := srv.receiveResult(res)
			srv.mu.Unlock()
			if notify != nil {
				notify()
			}
		})
		h.maybeFetchWork()
		h.resume()
	})
}

// queuedSeconds estimates the local execution seconds of queued work,
// using the server-provided estimates exactly as a BOINC client does.
func (h *Host) queuedSeconds() float64 {
	var s float64
	for _, t := range h.tasks {
		est := t.res.wu.job.EstimatedRefSeconds
		if est <= 0 {
			est = h.srv.cfg.FallbackEstimateSeconds
		}
		s += est / h.Speed
	}
	return s
}

// maybeFetchWork issues a scheduler RPC when the buffer drops below
// its low-water mark (half the target), then requests enough to fill
// back to the target — the BOINC client's min/max buffer hysteresis,
// which keeps well-stocked clients from contacting the scheduler after
// every result.
func (h *Host) maybeFetchWork() {
	if !h.on || h.detached {
		return
	}
	queued := h.queuedSeconds()
	if queued > 0.5*h.BufferSeconds {
		return
	}
	h.srv.schedulerRPC(h, h.BufferSeconds-queued)
}
