package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Series identity is the metric name
// plus the sorted label set.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label at a call site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes the metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DurationBuckets are the default histogram bounds for virtual-time
// durations, spanning the grid's scales: seconds (staging), minutes
// (queue waits), hours (job runtimes), days/weeks (BOINC turnaround).
var DurationBuckets = []float64{
	1, 10, 60, 300, 1800, 3600, 6 * 3600, 24 * 3600, 7 * 24 * 3600, 30 * 24 * 3600,
}

// shardCount spreads hot counters across cache lines; snapshots sum
// the shards, so the split never affects observed values.
const shardCount = 8

// shard is one padded atomic cell holding float64 bits.
type shard struct {
	bits atomic.Uint64
	_    [7]uint64 // pad to a cache line so shards don't false-share
}

func (s *shard) add(v float64) {
	for {
		old := s.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Counter is a monotonically increasing metric. Increments are
// lock-free: a round-robin pick spreads writers across shards.
type Counter struct {
	rr     atomic.Uint32
	shards [shardCount]shard
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters
// are monotone by contract). Nil-safe.
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	c.shards[c.rr.Add(1)%shardCount].add(v)
}

// Value sums the shards.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	var sum float64
	for i := range c.shards {
		sum += math.Float64frombits(c.shards[i].bits.Load())
	}
	return sum
}

// Gauge is a set-or-adjust metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    shard
	count  atomic.Uint64
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Bucket is one cumulative histogram cell in a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"` // +Inf for the last
	Count      uint64  `json:"count"`
}

// SeriesSnapshot is one metric series at a point in time.
type SeriesSnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	// Value holds counter/gauge readings.
	Value float64
	// Histogram fields.
	Sum     float64
	Count   uint64
	Buckets []Bucket // cumulative
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64

	mu       sync.Mutex
	bySeries map[string]any // canonical label key → handle
	ordered  []seriesEntry  // kept sorted by key
}

type seriesEntry struct {
	key    string
	labels []Label
	metric any
}

// Registry holds metric families. Handle creation takes a mutex;
// updates through the returned handles are lock-free.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*family
	ordered []*family // kept sorted by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family for name,
// panicking on a kind mismatch — that is a programming error at the
// instrumentation site, not a runtime condition.
func (r *Registry) familyFor(name, help string, kind Kind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bounds: bounds, bySeries: make(map[string]any)}
	r.byName[name] = f
	i := sort.Search(len(r.ordered), func(i int) bool { return r.ordered[i].name >= name })
	r.ordered = append(r.ordered, nil)
	copy(r.ordered[i+1:], r.ordered[i:])
	r.ordered[i] = f
	return f
}

// series returns (creating if needed) the handle for a label set.
// The constructor runs outside the lock — it is caller-supplied code,
// and a callback under mu is a deadlock waiting to happen — with a
// double-checked insert so racing creators converge on one handle.
func (f *family) series(labels []Label, mk func() any) any {
	key, sorted := canonLabels(labels)
	f.mu.Lock()
	if m, ok := f.bySeries[key]; ok {
		f.mu.Unlock()
		return m
	}
	f.mu.Unlock()
	m := mk()
	f.mu.Lock()
	defer f.mu.Unlock()
	if exist, ok := f.bySeries[key]; ok {
		return exist // another goroutine won the race; discard ours
	}
	f.bySeries[key] = m
	i := sort.Search(len(f.ordered), func(i int) bool { return f.ordered[i].key >= key })
	f.ordered = append(f.ordered, seriesEntry{})
	copy(f.ordered[i+1:], f.ordered[i:])
	f.ordered[i] = seriesEntry{key: key, labels: sorted, metric: m}
	return m
}

// Counter returns the counter for name+labels, creating both the
// family and the series on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, KindCounter, nil)
	return f.series(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, KindGauge, nil)
	return f.series(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name+labels. Bounds apply to the
// whole family and are fixed by the first registration; nil selects
// DurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	f := r.familyFor(name, help, KindHistogram, bounds)
	return f.series(labels, func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}).(*Histogram)
}

// Snapshot returns every series in deterministic order: families
// sorted by name, series sorted by canonical label key. Histogram
// buckets are cumulative.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.ordered...)
	r.mu.Unlock()
	var out []SeriesSnapshot
	for _, f := range fams {
		f.mu.Lock()
		entries := append([]seriesEntry(nil), f.ordered...)
		f.mu.Unlock()
		for _, e := range entries {
			s := SeriesSnapshot{Name: f.name, Help: f.help, Kind: f.kind, Labels: e.labels}
			switch m := e.metric.(type) {
			case *Counter:
				s.Value = m.Value()
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				var cum uint64
				s.Buckets = make([]Bucket, 0, len(m.bounds)+1)
				for i := range m.counts {
					cum += m.counts[i].Load()
					ub := math.Inf(1)
					if i < len(m.bounds) {
						ub = m.bounds[i]
					}
					s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
				}
				s.Count = m.count.Load()
				s.Sum = math.Float64frombits(m.sum.bits.Load())
			}
			out = append(out, s)
		}
	}
	return out
}

// canonLabels returns the canonical series key and the sorted label
// slice (a copy — the caller's slice is not retained).
func canonLabels(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String(), sorted
}

// escapeLabel escapes a label value for the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
