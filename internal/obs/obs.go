// Package obs is the grid's observability subsystem: a metrics
// registry (counters, gauges, histograms with label sets), a tracer
// whose spans are parented by batch/job ID, and a job-lifecycle event
// journal with a stable digest.
//
// Every timestamp in this package is *virtual* time read from a
// sim.Clock (in practice the sim.Engine); nothing here ever touches
// the wall clock. For a fixed seed, two runs of the same simulation
// therefore produce bit-identical metric snapshots, traces, and
// journal digests — which is what lets experiments assert on internal
// behaviour, not just final outputs.
//
// All entry points are nil-safe: a nil *Obs (or a handle obtained from
// one) is a no-op, so components can be instrumented unconditionally
// and run un-wired in unit tests at zero cost.
package obs

import "lattice/internal/sim"

// Obs bundles the three observability facilities that share one
// virtual clock. Construct it with New and hand it to each component
// (metasched, the LRMs, the BOINC server, GSBL, the portal).
type Obs struct {
	Registry *Registry
	Tracer   *Tracer
	Journal  *Journal
}

// New creates an observability hub reading virtual time from clock
// (normally the simulation's *sim.Engine).
func New(clock sim.Clock) *Obs {
	return &Obs{
		Registry: NewRegistry(),
		Tracer:   NewTracer(clock),
		Journal:  NewJournal(clock),
	}
}

// Counter returns the registered counter for name+labels, creating it
// on first use. Nil-safe: a nil *Obs yields a nil (no-op) handle.
func (o *Obs) Counter(name, help string, labels ...Label) *Counter {
	if o == nil || o.Registry == nil {
		return nil
	}
	return o.Registry.Counter(name, help, labels...)
}

// Gauge returns the registered gauge for name+labels.
func (o *Obs) Gauge(name, help string, labels ...Label) *Gauge {
	if o == nil || o.Registry == nil {
		return nil
	}
	return o.Registry.Gauge(name, help, labels...)
}

// Histogram returns the registered histogram for name+labels; nil
// bounds select DurationBuckets.
func (o *Obs) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if o == nil || o.Registry == nil {
		return nil
	}
	return o.Registry.Histogram(name, help, bounds, labels...)
}

// Record appends a job-lifecycle event to the journal, stamped with
// the current virtual time.
func (o *Obs) Record(batch, job string, stage Stage, resource, detail string) {
	if o == nil || o.Journal == nil {
		return
	}
	o.Journal.Record(batch, job, stage, resource, detail)
}

// Root returns (creating on first use) the root span of a batch.
func (o *Obs) Root(batch string) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Root(batch)
}

// Span starts a span for a job, parented under the batch's root span.
func (o *Obs) Span(batch, job, name string) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Start(batch, job, name)
}

// Exposition renders the registry in the text exposition format; a nil
// *Obs renders as empty.
func (o *Obs) Exposition() string {
	if o == nil || o.Registry == nil {
		return ""
	}
	return o.Registry.Exposition()
}
