package obs

import (
	"sync"

	"lattice/internal/sim"
)

// Tracer records spans keyed by batch and job ID. Span IDs are
// assigned in Start order — with the single-threaded simulation engine
// driving all lifecycle transitions, trace output is deterministic for
// a fixed seed. Timestamps are virtual time from the tracer's clock.
type Tracer struct {
	mu      sync.Mutex
	clock   sim.Clock
	nextID  uint64
	byBatch map[string]*batchTrace
}

// batchTrace holds one batch's spans in creation order.
type batchTrace struct {
	root  *Span
	spans []*Span
}

// Span is one timed operation in a job or batch lifecycle.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	batch  string
	job    string
	name   string
	start  sim.Time
	end    sim.Time
	ended  bool
	attrs  []Label
}

// Attr is a span annotation (re-exported label shape for JSON).
type Attr = Label

// NewTracer creates a tracer reading virtual time from clock.
func NewTracer(clock sim.Clock) *Tracer {
	return &Tracer{clock: clock, byBatch: make(map[string]*batchTrace)}
}

// Root returns the batch's root span, creating it (started now) on
// first use. All job spans of the batch parent under it.
func (t *Tracer) Root(batch string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rootLocked(batch)
}

func (t *Tracer) rootLocked(batch string) *Span {
	bt, ok := t.byBatch[batch]
	if !ok {
		bt = &batchTrace{}
		t.byBatch[batch] = bt
	}
	if bt.root == nil {
		t.nextID++
		bt.root = &Span{tr: t, id: t.nextID, batch: batch, name: "batch", start: t.clock.Now()}
		bt.spans = append(bt.spans, bt.root)
	}
	return bt.root
}

// Start begins a span for a job, parented under the batch's root span
// (created implicitly if the batch has none yet).
func (t *Tracer) Start(batch, job, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.rootLocked(batch)
	return t.startLocked(batch, root.id, job, name)
}

// Child begins a span nested under parent, inheriting its batch and
// job identity. Nil-safe: a nil parent yields a nil span.
func (t *Tracer) Child(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(parent.batch, parent.id, parent.job, name)
}

func (t *Tracer) startLocked(batch string, parent uint64, job, name string) *Span {
	bt := t.byBatch[batch]
	t.nextID++
	s := &Span{tr: t, id: t.nextID, parent: parent, batch: batch, job: job, name: name, start: t.clock.Now()}
	bt.spans = append(bt.spans, s)
	return s
}

// Annotate attaches a key/value attribute to the span. Nil-safe.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// End closes the span at the current virtual time. Ending twice keeps
// the first end time. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = s.tr.clock.Now()
	}
	s.tr.mu.Unlock()
}

// SpanView is the JSON shape of one span, served by the portal's
// /trace/{batch} endpoint. Times are virtual seconds.
type SpanView struct {
	ID       uint64  `json:"id"`
	Parent   uint64  `json:"parent,omitempty"`
	Job      string  `json:"job,omitempty"`
	Name     string  `json:"name"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	InFlight bool    `json:"inFlight,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
}

// Batch returns the batch's spans in creation order; ok reports
// whether the batch has a trace at all.
func (t *Tracer) Batch(batch string) (views []SpanView, ok bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bt, ok := t.byBatch[batch]
	if !ok {
		return nil, false
	}
	views = make([]SpanView, 0, len(bt.spans))
	for _, s := range bt.spans {
		v := SpanView{
			ID: s.id, Parent: s.parent, Job: s.job, Name: s.name,
			Start: float64(s.start), End: float64(s.end), InFlight: !s.ended,
		}
		if len(s.attrs) > 0 {
			v.Attrs = append([]Attr(nil), s.attrs...)
		}
		views = append(views, v)
	}
	return views, true
}

// NumBatches reports how many batches have traces.
func (t *Tracer) NumBatches() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byBatch)
}
