package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"

	"lattice/internal/sim"
)

// Stage names one step of the job lifecycle the journal tracks:
//
//	submit → validate → estimate → place → dispatch →
//	run / preempt / reissue / fault / requeue → quorum →
//	complete | fail
//
// Components record the stages they own: GSBL validates, the
// meta-scheduler submits/estimates/places/dispatches, requeues after
// resource death, and owns the terminal stages, the LRMs record run
// and preempt, the BOINC server records reissue and quorum, and the
// fault injector records fault.
type Stage string

const (
	StageSubmit   Stage = "submit"
	StageValidate Stage = "validate"
	StageEstimate Stage = "estimate"
	StagePlace    Stage = "place"
	StageDispatch Stage = "dispatch"
	StageRun      Stage = "run"
	StagePreempt  Stage = "preempt"
	StageReissue  Stage = "reissue"
	StageFault    Stage = "fault"
	StageRequeue  Stage = "requeue"
	StageQuorum   Stage = "quorum"
	StageComplete Stage = "complete"
	StageFail     Stage = "fail"
)

// Workflow-level stages, recorded by internal/dag with the workflow
// run ID in the Batch field and the stage ID (not a grid job ID) in
// the Job field. None of them is terminal in the job-conservation
// sense: a workflow stage expands into grid jobs that carry their own
// submit→terminal lifecycles.
const (
	StageWfSubmit    Stage = "wf-submit"
	StageWfReady     Stage = "wf-ready"
	StageWfDispatch  Stage = "wf-dispatch"
	StageWfStageDone Stage = "wf-stage-done"
	StageWfStageFail Stage = "wf-stage-fail"
	StageWfRetry     Stage = "wf-retry"
	StageWfSkip      Stage = "wf-skip"
	StageWfRerun     Stage = "wf-rerun"
	StageWfComplete  Stage = "wf-complete"
	StageWfFail      Stage = "wf-fail"
)

// Above-job-level robustness stages, recorded by the admission layer
// and the meta-scheduler.
const (
	// StageShed records a submission rejected by the admission layer
	// (per-user quota or load shed) before any batch or grid job
	// existed. It is journaled with empty Batch and Job fields and the
	// shed reason plus computed retry-after in Detail. At the
	// *submission* level it is terminal: with admission control on,
	// every submission ends in exactly one of completed, failed, or
	// shed (the first two accounted through its batch's jobs, the
	// last here). Job-level TerminalCounts is unaffected because a
	// shed submission never expanded into jobs.
	StageShed Stage = "wf-shed"
	// StageBreaker records a per-resource circuit-breaker transition
	// (open, half-open probe, reopened, closed) in the meta-scheduler,
	// with the resource name in the Resource field and no batch or
	// job.
	StageBreaker Stage = "breaker"
)

// Terminal reports whether the stage ends a job's lifecycle. StageShed
// is deliberately excluded: it is terminal for a *submission*, not a
// job — the job-conservation invariant (every submitted job reaches
// exactly one of complete|fail) only covers work that entered the
// grid, while shed submissions are accounted by the submission-level
// invariant submissions == batches + sheds.
func (s Stage) Terminal() bool { return s == StageComplete || s == StageFail }

// Event is one journal entry. At is virtual time.
type Event struct {
	At       sim.Time `json:"at"`
	Batch    string   `json:"batch,omitempty"`
	Job      string   `json:"job,omitempty"`
	Stage    Stage    `json:"stage"`
	Resource string   `json:"resource,omitempty"`
	Detail   string   `json:"detail,omitempty"`
}

// Journal is an append-only record of lifecycle events with a running
// digest. Events are stamped with virtual time at Record, so the
// journal of a fixed-seed simulation is identical run to run — the
// digest turns that into a one-line assertion.
type Journal struct {
	mu       sync.Mutex
	clock    sim.Clock
	hash     hash.Hash
	events   []Event
	observer func(Event)
}

// NewJournal creates an empty journal on the given virtual clock.
func NewJournal(clock sim.Clock) *Journal {
	return &Journal{clock: clock, hash: sha256.New()}
}

// SetObserver installs a callback invoked synchronously for every
// recorded event, after it is hashed. The callback runs under the
// journal lock — it must not call back into the journal. The
// durability layer uses this to mirror lifecycle events into the
// write-ahead log.
func (j *Journal) SetObserver(fn func(Event)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.observer = fn
}

// Record appends one event stamped with the current virtual time.
func (j *Journal) Record(batch, job string, stage Stage, resource, detail string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := Event{At: j.clock.Now(), Batch: batch, Job: job, Stage: stage, Resource: resource, Detail: detail}
	j.events = append(j.events, ev)
	HashEvent(j.hash, ev)
	if j.observer != nil {
		j.observer(ev) //lint:allow lockorder -- the observer is the WAL feed: it must see events in digest order, which only mu guarantees
	}
}

// HashEvent streams one event into h in the journal's canonical
// framing: fields separated by unit separators, events by newlines,
// the timestamp in shortest round-trip float form. Exported so the
// durability layer can maintain an identical running digest from its
// own record stream.
func HashEvent(h hash.Hash, ev Event) {
	//lint:allow errdrop -- hash.Hash documents that Write never errors
	h.Write([]byte(formatFloat(float64(ev.At))))
	for _, f := range []string{ev.Batch, ev.Job, string(ev.Stage), ev.Resource, ev.Detail} {
		//lint:allow errdrop -- hash.Hash documents that Write never errors
		h.Write([]byte{0x1f})
		//lint:allow errdrop -- hash.Hash documents that Write never errors
		h.Write([]byte(f))
	}
	//lint:allow errdrop -- hash.Hash documents that Write never errors
	h.Write([]byte{'\n'})
}

// Len reports the number of recorded events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Events returns a copy of the journal in append order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// Digest returns the hex SHA-256 over every event recorded so far.
// Two runs of the same seeded simulation must agree on it.
func (j *Journal) Digest() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return hex.EncodeToString(j.hash.Sum(nil))
}

// DigestAt returns the hex SHA-256 over the first n events — the
// digest the journal had when its length was n. Recovery uses this to
// check a rebuilt journal against a snapshot's recorded prefix.
func (j *Journal) DigestAt(n int) (string, error) {
	if j == nil {
		if n == 0 {
			return hex.EncodeToString(sha256.New().Sum(nil)), nil
		}
		return "", fmt.Errorf("obs: DigestAt(%d) on nil journal", n)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 0 || n > len(j.events) {
		return "", fmt.Errorf("obs: DigestAt(%d) outside journal of %d events", n, len(j.events))
	}
	h := sha256.New()
	for _, ev := range j.events[:n] {
		HashEvent(h, ev)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TerminalCounts returns, for every job whose lifecycle the journal
// saw begin (a submit event with a job ID), how many terminal
// (complete/fail) events it recorded. Conservation means every
// submitted job maps to exactly 1. Jobs that only appear in local
// events — e.g. reference-cluster retraining forks submitted below the
// grid level — are excluded: the journal never saw them submitted, so
// it cannot owe them a terminal state.
func (j *Journal) TerminalCounts() map[string]int {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int)
	for _, ev := range j.events {
		if ev.Job == "" {
			continue
		}
		if ev.Stage == StageSubmit {
			if _, seen := out[ev.Job]; !seen {
				out[ev.Job] = 0
			}
		}
		if _, seen := out[ev.Job]; seen && ev.Stage.Terminal() {
			out[ev.Job]++
		}
	}
	return out
}
