package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"lattice/internal/sim"
)

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("queue_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %g, want 5", got)
	}
	// Same name+labels returns the same handle.
	if r.Counter("jobs_total", "jobs") != c {
		t.Fatal("counter handle not deduplicated")
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	c := NewRegistry().Counter("n", "")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %g, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wait_seconds", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Kind != KindHistogram {
		t.Fatalf("snapshot = %+v", snaps)
	}
	snap := snaps[0]
	// Cumulative: ≤1 → 2 (0.5 and the exact bound 1), ≤10 → 3, ≤100 → 4, +Inf → 5.
	wantCum := []uint64{2, 3, 4, 5}
	for i, want := range wantCum {
		if snap.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %g, want +Inf", snap.Buckets[3].UpperBound)
	}
	if snap.Count != 5 || snap.Sum != 556.5 {
		t.Fatalf("count=%d sum=%g, want 5 and 556.5", snap.Count, snap.Sum)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total", "", L("x", "2")).Add(2)
		r.Counter("b_total", "", L("x", "1")).Add(1)
		r.Gauge("a_gauge", "").Set(9)
		r.Histogram("c_seconds", "", []float64{1, 10}, L("r", "pbs")).Observe(3)
		r.Counter("b_total", "", L("x", "1"), L("a", "z")).Inc()
		return r.Exposition()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("exposition differs between identical builds:\n%s\nvs\n%s", first, got)
		}
	}
	// Families sorted by name, series by canonical label key.
	ia, ib := strings.Index(first, "a_gauge"), strings.Index(first, "b_total")
	ic := strings.Index(first, "c_seconds")
	if !(ia < ib && ib < ic) {
		t.Fatalf("families out of order:\n%s", first)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("lattice_jobs_total", "jobs accepted", L("policy", "full")).Add(12)
	r.Gauge("lattice_pending", "").Set(3.25)
	r.Histogram("lattice_wait_seconds", "queue wait", []float64{60, 3600}).Observe(90)
	text := r.Exposition()
	m, err := ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if m[`lattice_jobs_total{policy="full"}`] != 12 {
		t.Fatalf("counter lost in round trip: %v", m)
	}
	if m["lattice_pending"] != 3.25 {
		t.Fatalf("gauge lost in round trip: %v", m)
	}
	if m[`lattice_wait_seconds_bucket{le="3600"}`] != 1 || m["lattice_wait_seconds_count"] != 1 {
		t.Fatalf("histogram lost in round trip: %v", m)
	}
	if _, err := ParseExposition("garbage line with no value x"); err == nil {
		t.Fatal("malformed exposition accepted")
	}
}

func TestTracerSpansAndViews(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng)
	root := tr.Root("batch-1")
	job := tr.Start("batch-1", "job-a", "job")
	eng.Schedule(10, func() {})
	eng.Run()
	job.Annotate("resource", "umd-hpc")
	job.End()
	job.End() // second End keeps the first end time
	views, ok := tr.Batch("batch-1")
	if !ok || len(views) != 2 {
		t.Fatalf("batch trace = %v ok=%v", views, ok)
	}
	if views[0].ID != root.id || views[0].Name != "batch" || views[0].InFlight != true {
		t.Fatalf("root view wrong: %+v", views[0])
	}
	jv := views[1]
	if jv.Parent != root.id || jv.Job != "job-a" || jv.Start != 0 || jv.End != 10 || jv.InFlight {
		t.Fatalf("job view wrong: %+v", jv)
	}
	if len(jv.Attrs) != 1 || jv.Attrs[0] != (Attr{Key: "resource", Value: "umd-hpc"}) {
		t.Fatalf("attrs wrong: %+v", jv.Attrs)
	}
	if _, ok := tr.Batch("nope"); ok {
		t.Fatal("unknown batch reported a trace")
	}
}

func TestJournalDigestAndConservation(t *testing.T) {
	run := func() (string, map[string]int) {
		eng := sim.NewEngine()
		j := NewJournal(eng)
		j.Record("b1", "j1", StageSubmit, "", "")
		eng.Schedule(5, func() { j.Record("b1", "j1", StageRun, "pbs", "") })
		eng.Schedule(9, func() { j.Record("b1", "j1", StageComplete, "pbs", "") })
		eng.Schedule(9, func() { j.Record("b1", "j2", StageSubmit, "", "") })
		eng.Run()
		return j.Digest(), j.TerminalCounts()
	}
	d1, t1 := run()
	d2, _ := run()
	if d1 != d2 {
		t.Fatalf("same event sequence, different digests: %s vs %s", d1, d2)
	}
	if t1["j1"] != 1 || t1["j2"] != 0 {
		t.Fatalf("terminal counts = %v", t1)
	}
	// Any difference — even in a detail string — changes the digest.
	eng := sim.NewEngine()
	j := NewJournal(eng)
	j.Record("b1", "j1", StageSubmit, "", "x")
	if j.Digest() == d1 {
		t.Fatal("different journals share a digest")
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	o.Counter("x", "").Inc()
	o.Gauge("x2", "").Set(1)
	o.Histogram("x3", "", nil).Observe(1)
	o.Record("b", "j", StageSubmit, "", "")
	o.Root("b").End()
	sp := o.Span("b", "j", "job")
	sp.Annotate("k", "v")
	sp.End()
	if o.Exposition() != "" {
		t.Fatal("nil Obs exposed metrics")
	}
	var j *Journal
	j.Record("", "", StageRun, "", "")
	if j.Digest() != "" || j.Len() != 0 || j.Events() != nil || j.TerminalCounts() != nil {
		t.Fatal("nil journal not inert")
	}
	var tr *Tracer
	if tr.Root("b") != nil || tr.NumBatches() != 0 {
		t.Fatal("nil tracer not inert")
	}
}
