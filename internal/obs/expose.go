package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Exposition renders the registry in the Prometheus-style text format:
//
//	# HELP lattice_sched_jobs_submitted_total Jobs accepted ...
//	# TYPE lattice_sched_jobs_submitted_total counter
//	lattice_sched_jobs_submitted_total 42
//
// Histograms expand to cumulative _bucket series (with an le label)
// plus _sum and _count. Output ordering and float formatting are
// deterministic, so for a fixed simulation seed two runs expose
// byte-identical text.
func (r *Registry) Exposition() string {
	var b strings.Builder
	WriteExposition(&b, r.Snapshot())
	return b.String()
}

// WriteExposition writes snapshot series (already deterministically
// ordered by Registry.Snapshot) in the text exposition format.
func WriteExposition(b *strings.Builder, snaps []SeriesSnapshot) {
	lastName := ""
	for _, s := range snaps {
		if s.Name != lastName {
			lastName = s.Name
			if s.Help != "" {
				b.WriteString("# HELP ")
				b.WriteString(s.Name)
				b.WriteByte(' ')
				b.WriteString(strings.ReplaceAll(s.Help, "\n", " "))
				b.WriteByte('\n')
			}
			b.WriteString("# TYPE ")
			b.WriteString(s.Name)
			b.WriteByte(' ')
			b.WriteString(s.Kind.String())
			b.WriteByte('\n')
		}
		switch s.Kind {
		case KindHistogram:
			for _, bk := range s.Buckets {
				writeSample(b, s.Name+"_bucket", s.Labels, Label{Key: "le", Value: formatFloat(bk.UpperBound)}, float64(bk.Count))
			}
			writeSample(b, s.Name+"_sum", s.Labels, Label{}, s.Sum)
			writeSample(b, s.Name+"_count", s.Labels, Label{}, float64(s.Count))
		default:
			writeSample(b, s.Name, s.Labels, Label{}, s.Value)
		}
	}
}

// writeSample writes one "name{labels} value" line; extra, when its
// key is non-empty, is appended after the series labels.
func writeSample(b *strings.Builder, name string, labels []Label, extra Label, value float64) {
	b.WriteString(name)
	if len(labels) > 0 || extra.Key != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, l)
		}
		if extra.Key != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
}

func writeLabel(b *strings.Builder, l Label) {
	b.WriteString(l.Key)
	b.WriteString(`="`)
	b.WriteString(escapeLabel(l.Value))
	b.WriteByte('"')
}

// formatFloat renders a sample value: shortest round-trip form, with
// the infinities spelled the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ParseExposition parses text-exposition output back into a flat
// series→value map keyed by "name{labels}" exactly as exposed.
// Comment and blank lines are skipped; any other malformed line is an
// error. It is the inverse the smoke checks and cmd/benchjson use.
func ParseExposition(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("obs: exposition line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:i], line[i+1:]
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		default:
			var err error
			if v, err = strconv.ParseFloat(valStr, 64); err != nil {
				return nil, fmt.Errorf("obs: exposition line %d: bad value %q", ln+1, valStr)
			}
		}
		out[key] = v
	}
	return out, nil
}
