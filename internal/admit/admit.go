// Package admit is the coordinator's overload-protection layer: the
// deterministic admission controller in front of the gsbl ingest door.
//
// The paper's architecture funnels every submission through one serial
// coordinator front door. The ingest model (internal/gsbl) prices that
// door honestly; this package decides who gets through it when demand
// exceeds capacity. Three mechanisms compose:
//
//   - Per-user token buckets meter replicates per virtual hour, so a
//     single user replaying the paper's 2000-replicate submission in a
//     loop exhausts their own budget, not the coordinator.
//   - A weighted fair-share queue (start-time fair queuing) replaces
//     FIFO ordering behind the door, so a heavy submission waits on
//     its owner's share rather than head-of-line-blocking thousands of
//     small ones.
//   - Bounded queues with deadline-aware shedding: when the queue
//     depth or the projected front-door wait exceeds its budget, the
//     lowest-share entry (largest virtual finish tag) is rejected with
//     a computed retry-after instead of degrading everyone.
//
// Everything runs on the simulation's virtual clock and uses no
// randomness, so same-seed runs shed the same submissions at the same
// instants and stay digest-equal. The zero Config disables the layer
// entirely.
package admit

import (
	"container/heap"
	"fmt"

	"lattice/internal/sim"
)

// Reasons a submission can be rejected by the controller.
const (
	// ReasonQuota marks a per-user token-bucket refusal: the user has
	// spent their replicate budget and must wait for refill.
	ReasonQuota = "quota"
	// ReasonOverload marks a load shed: the queue behind the front
	// door exceeded its depth or wait budget and this entry held the
	// lowest share.
	ReasonOverload = "overload"
)

// Config tunes the admission controller. The zero value disables it.
type Config struct {
	// UserRatePerHour is the per-user token-bucket refill rate in
	// replicates per virtual hour. 0 disables quotas.
	UserRatePerHour float64
	// UserBurst is the bucket capacity in replicates. Buckets start
	// full. Defaults to UserRatePerHour when unset. A submission
	// costing more than the burst is charged the full burst (it can
	// still be admitted, but only against a full bucket), so the
	// paper-scale 2000-replicate submission stays possible at low
	// frequency rather than becoming permanently inadmissible.
	UserBurst float64
	// MaxQueueDepth bounds how many admitted submissions may wait
	// behind the front door (the entry in service is not counted).
	// 0 leaves the depth unbounded.
	MaxQueueDepth int
	// MaxQueuedSeconds bounds the projected front-door wait: the
	// remaining service time of the entry at the door plus the summed
	// cost of everything queued, in virtual seconds. When an arrival
	// pushes the projection past this budget the lowest-share entry is
	// shed. 0 leaves the wait unbounded.
	MaxQueuedSeconds float64
}

// Enabled reports whether any protection mechanism is configured.
func (c Config) Enabled() bool {
	return c.UserRatePerHour > 0 || c.MaxQueueDepth > 0 || c.MaxQueuedSeconds > 0
}

// Validate rejects configurations that could never admit anything.
func (c Config) Validate() error {
	if c.UserRatePerHour < 0 || c.UserBurst < 0 || c.MaxQueueDepth < 0 || c.MaxQueuedSeconds < 0 {
		return fmt.Errorf("admit: negative config value: %+v", c)
	}
	return nil
}

// DefaultConfig is the overload-protection bundle the lattice CLI
// enables with -admit: a generous per-user budget (about one
// 600-replicate burst, refilling at 1200 replicates per virtual hour)
// and a front door bounded to ten minutes of projected wait.
func DefaultConfig() Config {
	return Config{
		UserRatePerHour:  1200,
		UserBurst:        600,
		MaxQueueDepth:    1024,
		MaxQueuedSeconds: 600,
	}
}

// Rejection is the typed error returned to a submission that was
// refused admission. RetryAfter is the controller's deterministic
// estimate of when a retry could succeed; the portal surfaces it as an
// HTTP Retry-After header on a 429 response.
type Rejection struct {
	// Reason is ReasonQuota or ReasonOverload.
	Reason string
	// User is the submitting user's email.
	User string
	// RetryAfter is the computed backoff hint, never below one second.
	RetryAfter sim.Duration
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("admit: submission from %s rejected (%s); retry after %.0fs",
		r.User, r.Reason, r.RetryAfter.Seconds())
}

// Entry is one admitted-but-not-yet-served submission in the
// fair-share queue. Payload carries the caller's context through the
// queue untouched.
type Entry struct {
	User    string
	Cost    float64 // service seconds at the front door
	Payload any

	start  float64 // virtual start tag
	finish float64 // virtual finish tag
	seq    uint64  // arrival order, the deterministic tie-break
	index  int     // heap position, -1 once popped or shed
}

// user tracks one principal's token bucket and fair-share tag.
type user struct {
	tokens     float64  // replicates available
	refilledAt sim.Time // last refill instant
	lastFinish float64  // virtual finish tag of their latest entry
}

// Controller is the admission state machine. It is not goroutine-safe:
// like the rest of the coordinator it runs inside single-threaded
// engine callbacks. It draws no randomness — admission order is a pure
// function of the arrival sequence and the virtual clock.
type Controller struct {
	cfg   Config
	users map[string]*user
	queue entryHeap
	vtime float64 // fair-share virtual time (served start tags)
	seq   uint64
	// queuedSeconds is the summed Cost of everything in queue,
	// maintained incrementally so Overflow is O(1) to consult.
	queuedSeconds float64
}

// NewController builds a controller for an enabled config. Callers
// should gate on cfg.Enabled() first; a disabled config yields a
// controller that admits everything unmetered.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.UserBurst == 0 {
		cfg.UserBurst = cfg.UserRatePerHour
	}
	return &Controller{cfg: cfg, users: make(map[string]*user)}, nil
}

// TakeQuota charges cost replicates against the user's token bucket at
// the given virtual instant. It returns nil when the charge fits and a
// *Rejection with the refill-based retry hint when it does not.
// Charges are capped at the bucket capacity, so oversized submissions
// require (and drain) a full bucket rather than being unserviceable.
func (c *Controller) TakeQuota(userEmail string, cost float64, now sim.Time) *Rejection {
	if c.cfg.UserRatePerHour <= 0 {
		return nil
	}
	u := c.userState(userEmail, now)
	ratePerSecond := c.cfg.UserRatePerHour / 3600
	elapsed := now.Sub(u.refilledAt).Seconds()
	if elapsed > 0 {
		u.tokens = min(c.cfg.UserBurst, u.tokens+ratePerSecond*elapsed)
	}
	u.refilledAt = now
	charge := min(cost, c.cfg.UserBurst)
	if u.tokens >= charge {
		u.tokens -= charge
		return nil
	}
	wait := (charge - u.tokens) / ratePerSecond
	return &Rejection{
		Reason:     ReasonQuota,
		User:       userEmail,
		RetryAfter: maxDuration(sim.Second, sim.Duration(wait)),
	}
}

// Push admits an entry into the fair-share queue. Tags follow
// start-time fair queuing with unit weights: the entry starts at the
// later of the global virtual time and its user's previous finish, and
// finishes its cost later. Serving in finish-tag order interleaves
// users regardless of how many entries any one of them has queued.
func (c *Controller) Push(userEmail string, cost float64, payload any) *Entry {
	u := c.userState(userEmail, sim.Time(0))
	start := max(c.vtime, u.lastFinish)
	e := &Entry{
		User:    userEmail,
		Cost:    cost,
		Payload: payload,
		start:   start,
		finish:  start + cost,
		seq:     c.seq,
	}
	c.seq++
	u.lastFinish = e.finish
	heap.Push(&c.queue, e)
	c.queuedSeconds += cost
	return e
}

// Pop removes and returns the entry with the smallest virtual finish
// tag (arrival order breaks ties), or nil when the queue is empty.
func (c *Controller) Pop() *Entry {
	if len(c.queue) == 0 {
		return nil
	}
	e := heap.Pop(&c.queue).(*Entry)
	c.queuedSeconds -= e.Cost
	c.vtime = max(c.vtime, e.start)
	return e
}

// Len reports how many entries are queued (excluding any in service).
func (c *Controller) Len() int { return len(c.queue) }

// QueuedSeconds reports the summed service cost of the queue.
func (c *Controller) QueuedSeconds() float64 { return c.queuedSeconds }

// Overflow checks the queue against its bounds given the remaining
// service seconds of the entry currently at the door. While either
// bound is exceeded it evicts and returns the lowest-share entry — the
// one with the largest virtual finish tag, i.e. the submission whose
// owner has consumed the most recent service — together with a
// *Rejection carrying the shed reason and retry hint. It returns
// (nil, nil) once the queue fits. Callers loop until nil.
func (c *Controller) Overflow(busySeconds float64) (*Entry, *Rejection) {
	over := false
	if c.cfg.MaxQueueDepth > 0 && len(c.queue) > c.cfg.MaxQueueDepth {
		over = true
	}
	projected := busySeconds + c.queuedSeconds
	if c.cfg.MaxQueuedSeconds > 0 && projected > c.cfg.MaxQueuedSeconds {
		over = true
	}
	if !over {
		return nil, nil
	}
	victim := c.evictMaxFinish()
	if victim == nil {
		return nil, nil
	}
	excess := projected - c.cfg.MaxQueuedSeconds
	if c.cfg.MaxQueuedSeconds <= 0 {
		// Only the depth bound is configured: advise waiting for the
		// whole projected backlog to drain.
		excess = projected
	}
	return victim, &Rejection{
		Reason:     ReasonOverload,
		User:       victim.User,
		RetryAfter: maxDuration(sim.Second, sim.Duration(excess)),
	}
}

// evictMaxFinish removes the entry with the largest (finish, seq) from
// the queue. Linear scan: the queue is bounded by construction.
func (c *Controller) evictMaxFinish() *Entry {
	if len(c.queue) == 0 {
		return nil
	}
	worst := 0
	for i := 1; i < len(c.queue); i++ {
		e, w := c.queue[i], c.queue[worst]
		if e.finish > w.finish || (e.finish == w.finish && e.seq > w.seq) { //lint:allow floatcmp -- exact tie-break between tags built from identical arithmetic
			worst = i
		}
	}
	e := c.queue[worst]
	heap.Remove(&c.queue, worst)
	c.queuedSeconds -= e.Cost
	return e
}

func (c *Controller) userState(email string, now sim.Time) *user {
	u, ok := c.users[email]
	if !ok {
		u = &user{tokens: c.cfg.UserBurst, refilledAt: now}
		c.users[email] = u
	}
	return u
}

// entryHeap orders entries by (finish, seq) ascending.
type entryHeap []*Entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish { //lint:allow floatcmp -- exact tie-break between tags built from identical arithmetic
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *entryHeap) Push(x any) {
	e := x.(*Entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

func maxDuration(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
