package admit

import (
	"testing"

	"lattice/internal/sim"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFairShareInterleavesUsers is the headline property: a user who
// queues one paper-scale 2000-replicate submission no longer
// head-of-line-blocks small users who arrive after it.
func TestFairShareInterleavesUsers(t *testing.T) {
	c := newTestController(t, Config{MaxQueueDepth: 100})
	c.Push("heavy@example.edu", 2000, "h1")
	c.Push("heavy@example.edu", 2000, "h2")
	for _, u := range []string{"a", "b", "c"} {
		c.Push(u+"@example.edu", 1, u)
	}
	var order []string
	for e := c.Pop(); e != nil; e = c.Pop() {
		order = append(order, e.Payload.(string))
	}
	want := []string{"a", "b", "c", "h1", "h2"}
	if len(order) != len(want) {
		t.Fatalf("popped %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

// TestFairShareFIFOWithinUser checks entries from one user keep their
// arrival order: finish tags chain off the user's previous finish.
func TestFairShareFIFOWithinUser(t *testing.T) {
	c := newTestController(t, Config{MaxQueueDepth: 100})
	for i, cost := range []float64{5, 1, 3} {
		c.Push("u@example.edu", cost, i)
	}
	for want := 0; want < 3; want++ {
		e := c.Pop()
		if e == nil || e.Payload.(int) != want {
			t.Fatalf("pop %d returned %+v", want, e)
		}
	}
}

// TestFairShareVirtualTimeAdvances checks a user who went idle does
// not bank credit: their next entry starts at the served virtual time,
// not at their stale last finish.
func TestFairShareVirtualTimeAdvances(t *testing.T) {
	c := newTestController(t, Config{MaxQueueDepth: 100})
	c.Push("a@example.edu", 100, "a1")
	if e := c.Pop(); e.Payload.(string) != "a1" {
		t.Fatalf("unexpected pop %v", e.Payload)
	}
	// vtime is now 0 (a1 started at 0); push b then a again.
	c.Push("b@example.edu", 1, "b1")
	e := c.Pop()
	if e.Payload.(string) != "b1" {
		t.Fatalf("idle arrival lost to a stale tag: got %v", e.Payload)
	}
}

// TestQuotaRefillAndRetryAfter pins the token-bucket arithmetic on the
// virtual clock, including the deterministic retry hint.
func TestQuotaRefillAndRetryAfter(t *testing.T) {
	c := newTestController(t, Config{UserRatePerHour: 3600, UserBurst: 100})
	// Bucket starts full: 100 tokens, refilling 1/s.
	if rej := c.TakeQuota("u@x", 80, 0); rej != nil {
		t.Fatalf("first charge rejected: %v", rej)
	}
	// 20 left; 50 more should be refused with retry-after 30s.
	rej := c.TakeQuota("u@x", 50, 0)
	if rej == nil {
		t.Fatal("overdraft admitted")
	}
	if rej.Reason != ReasonQuota || rej.User != "u@x" {
		t.Fatalf("rejection %+v", rej)
	}
	if rej.RetryAfter != 30*sim.Second {
		t.Fatalf("RetryAfter = %v, want 30s", rej.RetryAfter)
	}
	// After 30 virtual seconds the same charge fits exactly.
	if rej := c.TakeQuota("u@x", 50, sim.Time(30*sim.Second)); rej != nil {
		t.Fatalf("post-refill charge rejected: %v", rej)
	}
	// Another user is untouched.
	if rej := c.TakeQuota("v@x", 100, 0); rej != nil {
		t.Fatalf("independent bucket rejected: %v", rej)
	}
}

// TestQuotaChargeCappedAtBurst checks a submission larger than the
// bucket drains a full bucket instead of being permanently refused.
func TestQuotaChargeCappedAtBurst(t *testing.T) {
	c := newTestController(t, Config{UserRatePerHour: 3600, UserBurst: 100})
	if rej := c.TakeQuota("u@x", 2000, 0); rej != nil {
		t.Fatalf("oversized charge against a full bucket rejected: %v", rej)
	}
	// Bucket is now empty; the next oversized charge needs a full
	// refill: 100 tokens at 1/s.
	rej := c.TakeQuota("u@x", 2000, 0)
	if rej == nil {
		t.Fatal("second oversized charge admitted against an empty bucket")
	}
	if rej.RetryAfter != 100*sim.Second {
		t.Fatalf("RetryAfter = %v, want 100s", rej.RetryAfter)
	}
}

// TestOverflowShedsLowestShare checks the shed policy evicts the
// largest finish tag — the entry whose owner holds the most queued
// service — and reports retry-after from the budget excess.
func TestOverflowShedsLowestShare(t *testing.T) {
	c := newTestController(t, Config{MaxQueuedSeconds: 10})
	c.Push("small@x", 4, "s1")
	c.Push("heavy@x", 9, "h1")
	// Projection 13s > 10s budget: the heavy entry (finish 9 vs 4)
	// is shed, not the small one.
	victim, rej := c.Overflow(0)
	if victim == nil || victim.Payload.(string) != "h1" {
		t.Fatalf("shed victim %+v, want h1", victim)
	}
	if rej.Reason != ReasonOverload {
		t.Fatalf("rejection %+v", rej)
	}
	if rej.RetryAfter != 3*sim.Second {
		t.Fatalf("RetryAfter = %v, want 3s (13s projected - 10s budget)", rej.RetryAfter)
	}
	if v, r := c.Overflow(0); v != nil || r != nil {
		t.Fatalf("queue still overflows after shed: %+v", v)
	}
	if e := c.Pop(); e == nil || e.Payload.(string) != "s1" {
		t.Fatalf("surviving entry %+v, want s1", e)
	}
}

// TestOverflowDepthBound checks the count bound sheds down to the
// configured depth and advises waiting out the projected backlog.
func TestOverflowDepthBound(t *testing.T) {
	c := newTestController(t, Config{MaxQueueDepth: 2})
	for i := 0; i < 4; i++ {
		c.Push("u@x", 5, i)
	}
	var shed int
	for {
		v, rej := c.Overflow(0)
		if v == nil {
			break
		}
		if rej.Reason != ReasonOverload || rej.RetryAfter < sim.Second {
			t.Fatalf("rejection %+v", rej)
		}
		shed++
	}
	if shed != 2 || c.Len() != 2 {
		t.Fatalf("shed %d leaving %d queued, want 2 and 2", shed, c.Len())
	}
}

// TestOverflowCountsBusyDoor checks the remaining service time at the
// door participates in the wait projection.
func TestOverflowCountsBusyDoor(t *testing.T) {
	c := newTestController(t, Config{MaxQueuedSeconds: 10})
	c.Push("u@x", 4, "e")
	if v, _ := c.Overflow(0); v != nil {
		t.Fatal("4s queue shed against a 10s budget with an idle door")
	}
	c.Push("u@x", 4, "f")
	if v, _ := c.Overflow(8); v == nil {
		t.Fatal("8s busy + 8s queued not shed against a 10s budget")
	}
}

// TestDeterministicReplay checks the controller is a pure function of
// its operation sequence: two controllers fed identical pushes, pops
// and quota charges agree on every decision.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{UserRatePerHour: 600, UserBurst: 50, MaxQueueDepth: 3, MaxQueuedSeconds: 40}
	run := func() []string {
		c := newTestController(t, cfg)
		var trace []string
		users := []string{"a@x", "b@x", "a@x", "c@x", "a@x", "b@x", "a@x"}
		for i, u := range users {
			cost := float64(1 + (i*7)%13)
			if rej := c.TakeQuota(u, cost, sim.Time(sim.Duration(i)*sim.Minute)); rej != nil {
				trace = append(trace, "quota:"+u)
				continue
			}
			c.Push(u, cost, i)
			for {
				v, _ := c.Overflow(5)
				if v == nil {
					break
				}
				trace = append(trace, "shed:"+v.User)
			}
			if i%3 == 2 {
				if e := c.Pop(); e != nil {
					trace = append(trace, "pop:"+e.User)
				}
			}
		}
		for e := c.Pop(); e != nil; e = c.Pop() {
			trace = append(trace, "drain:"+e.User)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("twin traces diverge: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("twin traces diverge at %d: %v vs %v", i, a, b)
		}
	}
	if len(a) == 0 {
		t.Fatal("trace empty; test exercised nothing")
	}
}

// TestConfigValidate pins the enable gate and rejection of negatives.
func TestConfigValidate(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{MaxQueueDepth: 1}).Enabled() || !(Config{UserRatePerHour: 1}).Enabled() ||
		!(Config{MaxQueuedSeconds: 1}).Enabled() {
		t.Error("configured bound not reported enabled")
	}
	if _, err := NewController(Config{UserRatePerHour: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if err := DefaultConfig().Validate(); err != nil || !DefaultConfig().Enabled() {
		t.Error("DefaultConfig must validate and enable")
	}
}
