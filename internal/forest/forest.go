package forest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"lattice/internal/sim"
)

// Config controls forest training. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// NumTrees is the ensemble size. The paper uses 1 × 10^4 trees
	// for the GARLI runtime model.
	NumTrees int
	// MTry is the number of covariates sampled at each node (the
	// "further injection of randomness" distinguishing random forests
	// from bagging). 0 selects the regression default max(1, p/3).
	MTry int
	// MinLeafSize is the minimum observations per leaf (R default 5
	// for regression).
	MinLeafSize int
	// MaxDepth bounds tree depth; 0 = unlimited.
	MaxDepth int
	// Seed makes training deterministic; trees are built in parallel
	// but each derives its own RNG stream from Seed, so results do
	// not depend on goroutine scheduling.
	Seed int64
	// Workers limits build parallelism; 0 = GOMAXPROCS.
	Workers int
}

// DefaultConfig mirrors the R randomForest regression defaults used by
// the paper, at a smaller default ensemble size (callers reproducing
// Figure 2 pass NumTrees: 10000 explicitly).
func DefaultConfig() Config {
	return Config{NumTrees: 500, MinLeafSize: 5}
}

// Forest is a trained random forest regression model.
type Forest struct {
	schema *Schema
	cfg    Config
	trees  []*regTree

	oobPrediction []float64 // mean OOB vote per training row (NaN if never OOB)
	oobCounts     []int
	oobMSE        float64
	trainVariance float64
	ds            *Dataset // retained for permutation importance
}

// Train grows a forest on ds. It is deterministic for a given
// Config.Seed regardless of parallelism.
func Train(ds *Dataset, cfg Config) (*Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumTrees <= 0 {
		return nil, fmt.Errorf("forest: NumTrees must be positive, got %d", cfg.NumTrees)
	}
	if cfg.MinLeafSize <= 0 {
		cfg.MinLeafSize = 5
	}
	p := ds.Schema.NumFeatures()
	if cfg.MTry <= 0 {
		cfg.MTry = p / 3
		if cfg.MTry < 1 {
			cfg.MTry = 1
		}
	}
	if cfg.MTry > p {
		cfg.MTry = p
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.NumTrees {
		workers = cfg.NumTrees
	}

	f := &Forest{schema: ds.Schema, cfg: cfg, trees: make([]*regTree, cfg.NumTrees), ds: ds.Clone()}
	n := ds.NumRows()

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				// Per-tree deterministic stream: independent of which
				// worker builds which tree.
				rng := sim.NewRNG(cfg.Seed + int64(t)*0x9E3779B9)
				rows := make([]int, n)
				inBag := make([]bool, n)
				for i := range rows {
					r := rng.Intn(n)
					rows[i] = r
					inBag[r] = true
				}
				b := &treeBuilder{ds: f.ds, cfg: cfg, rng: rng}
				tree := b.grow(rows)
				for i := 0; i < n; i++ {
					if !inBag[i] {
						tree.oob = append(tree.oob, i)
					}
				}
				f.trees[t] = tree
			}
		}()
	}
	for t := 0; t < cfg.NumTrees; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	f.computeOOB()
	return f, nil
}

// computeOOB fills the out-of-bag predictions and error.
func (f *Forest) computeOOB() {
	n := f.ds.NumRows()
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, tr := range f.trees {
		for _, r := range tr.oob {
			sums[r] += tr.predict(f.ds.X[r], f.schema.Kinds)
			counts[r]++
		}
	}
	f.oobPrediction = make([]float64, n)
	f.oobCounts = counts
	var sse float64
	var m int
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			f.oobPrediction[i] = f.ds.Y[i] // never OOB (tiny forests only)
			continue
		}
		f.oobPrediction[i] = sums[i] / float64(counts[i])
		d := f.oobPrediction[i] - f.ds.Y[i]
		sse += d * d
		m++
	}
	if m > 0 {
		f.oobMSE = sse / float64(m)
	}
	f.trainVariance = variance(f.ds.Y)
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Predict returns the forest's prediction for covariates x.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for _, tr := range f.trees {
		s += tr.predict(x, f.schema.Kinds)
	}
	return s / float64(len(f.trees))
}

// OOBPrediction returns the out-of-bag prediction for training row i.
func (f *Forest) OOBPrediction(i int) float64 { return f.oobPrediction[i] }

// OOBMSE returns the out-of-bag mean squared error.
func (f *Forest) OOBMSE() float64 { return f.oobMSE }

// PercentVarExplained returns 1 - OOB MSE / Var(y), in percent — the
// statistic the paper reports as "approximately 93%".
func (f *Forest) PercentVarExplained() float64 {
	if f.trainVariance == 0 {
		return 0
	}
	return 100 * (1 - f.oobMSE/f.trainVariance)
}

// ImportanceResult pairs a feature with its permutation importance.
type ImportanceResult struct {
	Feature string
	// PctIncMSE is the percent increase in out-of-bag MSE when the
	// feature's values are permuted among OOB cases — the measure in
	// the paper's Figure 2.
	PctIncMSE float64
}

// Importance computes permutation variable importance for every
// feature: for each tree, the OOB MSE is recomputed with the feature's
// OOB values shuffled; the aggregate increase over the baseline OOB
// MSE, in percent, is reported. Deterministic for a given seed.
func (f *Forest) Importance(seed int64) []ImportanceResult {
	p := f.schema.NumFeatures()
	incSSE := make([]float64, p)
	counts := make([]int, p)
	baseSSE := make([]float64, p)
	rng := sim.NewRNG(seed)
	for _, tr := range f.trees {
		if len(tr.oob) < 2 {
			continue
		}
		// Baseline SSE of this tree on its OOB rows.
		var base float64
		for _, r := range tr.oob {
			d := tr.predict(f.ds.X[r], f.schema.Kinds) - f.ds.Y[r]
			base += d * d
		}
		row := make([]float64, p)
		perm := make([]int, len(tr.oob))
		for j := 0; j < p; j++ {
			copy(perm, rng.Perm(len(tr.oob)))
			var sse float64
			for k, r := range tr.oob {
				copy(row, f.ds.X[r])
				row[j] = f.ds.X[tr.oob[perm[k]]][j]
				d := tr.predict(row, f.schema.Kinds) - f.ds.Y[r]
				sse += d * d
			}
			incSSE[j] += sse - base
			baseSSE[j] += base
			counts[j] += len(tr.oob)
		}
	}
	out := make([]ImportanceResult, p)
	for j := 0; j < p; j++ {
		var pct float64
		if baseSSE[j] > 0 {
			pct = 100 * incSSE[j] / baseSSE[j]
		}
		out[j] = ImportanceResult{Feature: f.schema.Names[j], PctIncMSE: pct}
	}
	return out
}

// GainImportance returns split-gain variable importance: each
// feature's share of the total SSE reduction achieved by splits on it,
// in percent. Cheaper than permutation importance but biased toward
// high-cardinality features — the ablation experiment contrasts the
// two (the paper uses the permutation measure).
func (f *Forest) GainImportance() []ImportanceResult {
	p := f.schema.NumFeatures()
	totals := make([]float64, p)
	var grand float64
	for _, tr := range f.trees {
		for j, g := range tr.gain {
			totals[j] += g
			grand += g
		}
	}
	out := make([]ImportanceResult, p)
	for j := 0; j < p; j++ {
		var pct float64
		if grand > 0 {
			pct = 100 * totals[j] / grand
		}
		out[j] = ImportanceResult{Feature: f.schema.Names[j], PctIncMSE: pct}
	}
	return out
}

// RankedImportance returns Importance sorted descending by %IncMSE.
func (f *Forest) RankedImportance(seed int64) []ImportanceResult {
	imp := f.Importance(seed)
	sort.Slice(imp, func(i, j int) bool { return imp[i].PctIncMSE > imp[j].PctIncMSE })
	return imp
}

// CrossValidate runs k-fold cross-validation of a forest configuration
// on ds and returns the per-row held-out predictions, fold assignment
// shuffled deterministically by cfg.Seed.
func CrossValidate(ds *Dataset, cfg Config, k int) ([]float64, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := ds.NumRows()
	if k < 2 || k > n {
		return nil, fmt.Errorf("forest: k = %d folds invalid for %d rows", k, n)
	}
	rng := sim.NewRNG(cfg.Seed ^ 0x5DEECE66D)
	order := rng.Perm(n)
	pred := make([]float64, n)
	for fold := 0; fold < k; fold++ {
		var trainIdx, testIdx []int
		for pos, r := range order {
			if pos%k == fold {
				testIdx = append(testIdx, r)
			} else {
				trainIdx = append(trainIdx, r)
			}
		}
		sub := &Dataset{Schema: ds.Schema}
		for _, r := range trainIdx {
			sub.X = append(sub.X, ds.X[r])
			sub.Y = append(sub.Y, ds.Y[r])
		}
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed + int64(fold)
		f, err := Train(sub, foldCfg)
		if err != nil {
			return nil, err
		}
		for _, r := range testIdx {
			pred[r] = f.Predict(ds.X[r])
		}
	}
	return pred, nil
}
