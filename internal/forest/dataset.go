// Package forest implements random forests for regression from
// scratch (Breiman 2001): an ensemble of CART regression trees, each
// grown on a bootstrap sample of the training data and choosing each
// split from a random subset of the covariates. It provides the three
// facilities the paper's runtime-prediction system relies on:
//
//   - prediction (the mean vote of the ensemble),
//   - out-of-bag error and percent variance explained (the paper
//     reports ~93% for the nine-predictor GARLI model), and
//   - permutation variable importance measured as percent increase in
//     mean squared error (the quantity plotted in the paper's
//     Figure 2).
//
// Both categorical and continuous covariates are supported without
// preprocessing, mirroring the R randomForest package the paper used.
package forest

import "fmt"

// FeatureKind distinguishes continuous from categorical covariates.
type FeatureKind int

const (
	// Numeric features split on x <= threshold.
	Numeric FeatureKind = iota
	// Categorical features split on subset membership; category
	// values are non-negative integer codes stored in float64 cells.
	Categorical
)

// Schema describes the covariates of a dataset.
type Schema struct {
	Names []string
	Kinds []FeatureKind
}

// NumFeatures returns the number of covariates.
func (s *Schema) NumFeatures() int { return len(s.Names) }

// Validate checks internal consistency.
func (s *Schema) Validate() error {
	if len(s.Names) == 0 {
		return fmt.Errorf("forest: schema has no features")
	}
	if len(s.Names) != len(s.Kinds) {
		return fmt.Errorf("forest: schema has %d names but %d kinds", len(s.Names), len(s.Kinds))
	}
	seen := map[string]bool{}
	for _, n := range s.Names {
		if n == "" {
			return fmt.Errorf("forest: empty feature name")
		}
		if seen[n] {
			return fmt.Errorf("forest: duplicate feature name %q", n)
		}
		seen[n] = true
	}
	return nil
}

// maxCategories bounds categorical cardinality: category subsets are
// encoded in a uint64 bitmask per tree node.
const maxCategories = 64

// Dataset is a design matrix with responses. Rows of X hold one value
// per schema feature; categorical values must be integer codes in
// [0, 64).
type Dataset struct {
	Schema *Schema
	X      [][]float64
	Y      []float64
}

// NumRows returns the number of observations.
func (d *Dataset) NumRows() int { return len(d.Y) }

// Validate checks shape and categorical coding.
func (d *Dataset) Validate() error {
	if d.Schema == nil {
		return fmt.Errorf("forest: dataset has no schema")
	}
	if err := d.Schema.Validate(); err != nil {
		return err
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("forest: %d rows of X but %d responses", len(d.X), len(d.Y))
	}
	if len(d.Y) == 0 {
		return fmt.Errorf("forest: empty dataset")
	}
	p := d.Schema.NumFeatures()
	for i, row := range d.X {
		if len(row) != p {
			return fmt.Errorf("forest: row %d has %d features; schema has %d", i, len(row), p)
		}
		for j, v := range row {
			if d.Schema.Kinds[j] == Categorical {
				//lint:allow floatcmp -- integrality check: a categorical level is valid only if exactly integral
				if v != float64(int(v)) || v < 0 || v >= maxCategories {
					return fmt.Errorf("forest: row %d feature %q: categorical value %v must be an integer in [0,%d)", i, d.Schema.Names[j], v, maxCategories)
				}
			}
		}
	}
	return nil
}

// Append adds an observation. It is how the continuous-retraining loop
// grows the training matrix as reference-cluster replicates complete.
func (d *Dataset) Append(x []float64, y float64) error {
	if len(x) != d.Schema.NumFeatures() {
		return fmt.Errorf("forest: observation has %d features; schema has %d", len(x), d.Schema.NumFeatures())
	}
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
	return nil
}

// Clone returns a deep copy (training snapshots while the live matrix
// keeps growing).
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Schema: d.Schema, Y: append([]float64(nil), d.Y...)}
	c.X = make([][]float64, len(d.X))
	for i, row := range d.X {
		c.X[i] = append([]float64(nil), row...)
	}
	return c
}

// variance returns the population variance of y.
func variance(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ss float64
	for _, v := range y {
		d := v - mean
		ss += d * d
	}
	return ss / float64(len(y))
}
