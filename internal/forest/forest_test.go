package forest

import (
	"math"
	"testing"
	"testing/quick"

	"lattice/internal/sim"
)

// syntheticDataset builds a regression problem with known structure:
// y = 10*x0 + 5*onehot(x1==2) + noise; x2 is pure noise.
func syntheticDataset(n int, seed int64) *Dataset {
	rng := sim.NewRNG(seed)
	schema := &Schema{
		Names: []string{"signal", "category", "noise"},
		Kinds: []FeatureKind{Numeric, Categorical, Numeric},
	}
	ds := &Dataset{Schema: schema}
	for i := 0; i < n; i++ {
		x0 := rng.Float64()
		x1 := float64(rng.Intn(4))
		x2 := rng.Float64()
		y := 10*x0 + rng.Normal(0, 0.3)
		if x1 == 2 {
			y += 5
		}
		ds.X = append(ds.X, []float64{x0, x1, x2})
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestTrainValidation(t *testing.T) {
	ds := syntheticDataset(50, 1)
	if _, err := Train(ds, Config{NumTrees: 0}); err == nil {
		t.Error("expected error for zero trees")
	}
	bad := &Dataset{Schema: ds.Schema}
	if _, err := Train(bad, DefaultConfig()); err == nil {
		t.Error("expected error for empty dataset")
	}
	ragged := syntheticDataset(10, 2)
	ragged.X[3] = []float64{1}
	if _, err := Train(ragged, DefaultConfig()); err == nil {
		t.Error("expected error for ragged row")
	}
	badCat := syntheticDataset(10, 3)
	badCat.X[0][1] = 2.5
	if _, err := Train(badCat, DefaultConfig()); err == nil {
		t.Error("expected error for non-integer categorical")
	}
	badCat2 := syntheticDataset(10, 4)
	badCat2.X[0][1] = 64
	if _, err := Train(badCat2, DefaultConfig()); err == nil {
		t.Error("expected error for categorical ≥ 64")
	}
}

func TestForestLearnsSignal(t *testing.T) {
	ds := syntheticDataset(400, 10)
	cfg := DefaultConfig()
	cfg.NumTrees = 200
	cfg.Seed = 7
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pv := f.PercentVarExplained(); pv < 80 {
		t.Errorf("percent variance explained = %.1f, want > 80 on an easy problem", pv)
	}
	// Prediction for a fresh point near the regression surface.
	got := f.Predict([]float64{0.5, 2, 0.1})
	want := 10*0.5 + 5
	if math.Abs(got-want) > 1.5 {
		t.Errorf("Predict = %.2f, want ≈ %.2f", got, want)
	}
	got = f.Predict([]float64{0.9, 0, 0.9})
	want = 9
	if math.Abs(got-want) > 1.5 {
		t.Errorf("Predict = %.2f, want ≈ %.2f", got, want)
	}
}

func TestOOBMSEReasonable(t *testing.T) {
	ds := syntheticDataset(300, 20)
	cfg := DefaultConfig()
	cfg.NumTrees = 150
	cfg.Seed = 8
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.OOBMSE() <= 0 {
		t.Error("OOB MSE should be positive with noisy data")
	}
	if f.OOBMSE() > variance(ds.Y) {
		t.Errorf("OOB MSE %.3f worse than predicting the mean (var %.3f)", f.OOBMSE(), variance(ds.Y))
	}
}

func TestImportanceRanking(t *testing.T) {
	ds := syntheticDataset(400, 30)
	cfg := DefaultConfig()
	cfg.NumTrees = 200
	cfg.Seed = 9
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importance(1)
	byName := map[string]float64{}
	for _, r := range imp {
		byName[r.Feature] = r.PctIncMSE
	}
	if !(byName["signal"] > byName["category"] && byName["category"] > byName["noise"]) {
		t.Errorf("importance ordering wrong: %v", byName)
	}
	if byName["noise"] > byName["signal"]/4 {
		t.Errorf("noise importance %.1f not ≪ signal %.1f", byName["noise"], byName["signal"])
	}
	ranked := f.RankedImportance(1)
	if ranked[0].Feature != "signal" {
		t.Errorf("top-ranked feature = %q, want signal", ranked[0].Feature)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].PctIncMSE > ranked[i-1].PctIncMSE {
			t.Error("RankedImportance not sorted descending")
		}
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	ds := syntheticDataset(200, 40)
	train := func(workers int) *Forest {
		cfg := DefaultConfig()
		cfg.NumTrees = 60
		cfg.Seed = 123
		cfg.Workers = workers
		f, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1 := train(1)
	f8 := train(8)
	probe := []float64{0.3, 1, 0.7}
	if f1.Predict(probe) != f8.Predict(probe) {
		t.Error("prediction differs between 1 and 8 workers")
	}
	if f1.OOBMSE() != f8.OOBMSE() {
		t.Error("OOB MSE differs between 1 and 8 workers")
	}
}

func TestCategoricalSplitUsed(t *testing.T) {
	// A purely categorical signal: the forest must separate category
	// means without any numeric feature.
	rng := sim.NewRNG(50)
	schema := &Schema{Names: []string{"cat"}, Kinds: []FeatureKind{Categorical}}
	ds := &Dataset{Schema: schema}
	means := []float64{0, 10, -5, 3}
	for i := 0; i < 400; i++ {
		c := rng.Intn(4)
		ds.X = append(ds.X, []float64{float64(c)})
		ds.Y = append(ds.Y, means[c]+rng.Normal(0, 0.2))
	}
	cfg := DefaultConfig()
	cfg.NumTrees = 100
	cfg.Seed = 3
	cfg.MTry = 1
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, m := range means {
		got := f.Predict([]float64{float64(c)})
		if math.Abs(got-m) > 0.5 {
			t.Errorf("category %d predicted %.2f, want ≈ %.1f", c, got, m)
		}
	}
}

func TestPredictMonotoneInSignalProperty(t *testing.T) {
	ds := syntheticDataset(300, 60)
	cfg := DefaultConfig()
	cfg.NumTrees = 100
	cfg.Seed = 11
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Property: predictions stay within the observed response range
	// (forest predictions are means of training responses).
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, y := range ds.Y {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	prop := func(a, b, c uint16) bool {
		x := []float64{float64(a%1000) / 1000, float64(b % 4), float64(c%1000) / 1000}
		p := f.Predict(x)
		return p >= minY-1e-9 && p <= maxY+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAppendAndRetrain(t *testing.T) {
	ds := syntheticDataset(100, 70)
	cfg := DefaultConfig()
	cfg.NumTrees = 80
	cfg.Seed = 5
	before, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Append a cluster of new observations in a previously unseen
	// region; retraining should move predictions there.
	for i := 0; i < 60; i++ {
		if err := ds.Append([]float64{0.95, 3, 0.5}, 100); err != nil {
			t.Fatal(err)
		}
	}
	after, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.95, 3, 0.5}
	if !(after.Predict(probe) > before.Predict(probe)+20) {
		t.Errorf("retraining ignored new data: before %.1f after %.1f",
			before.Predict(probe), after.Predict(probe))
	}
	if err := ds.Append([]float64{1}, 1); err == nil {
		t.Error("expected error appending short row")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := syntheticDataset(200, 80)
	cfg := DefaultConfig()
	cfg.NumTrees = 60
	cfg.Seed = 6
	pred, err := CrossValidate(ds, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != ds.NumRows() {
		t.Fatalf("got %d predictions for %d rows", len(pred), ds.NumRows())
	}
	// Held-out predictions should correlate strongly with truth.
	if r := correlation(pred, ds.Y); r < 0.9 {
		t.Errorf("CV correlation = %.3f, want > 0.9", r)
	}
	if _, err := CrossValidate(ds, cfg, 1); err == nil {
		t.Error("expected error for k=1")
	}
	if _, err := CrossValidate(ds, cfg, 10000); err == nil {
		t.Error("expected error for k > n")
	}
}

func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func TestMTryDefaultsAndBounds(t *testing.T) {
	ds := syntheticDataset(100, 90)
	cfg := DefaultConfig()
	cfg.NumTrees = 30
	cfg.MTry = 99 // clamped to p
	if _, err := Train(ds, cfg); err != nil {
		t.Fatalf("MTry clamp failed: %v", err)
	}
}

func TestSingleRowDegenerate(t *testing.T) {
	schema := &Schema{Names: []string{"x"}, Kinds: []FeatureKind{Numeric}}
	ds := &Dataset{Schema: schema, X: [][]float64{{1}}, Y: []float64{5}}
	cfg := DefaultConfig()
	cfg.NumTrees = 10
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{42}); got != 5 {
		t.Errorf("single-row forest predicts %v, want 5", got)
	}
}

func TestGainImportanceAgreesOnLeaders(t *testing.T) {
	ds := syntheticDataset(400, 95)
	cfg := DefaultConfig()
	cfg.NumTrees = 150
	cfg.Seed = 12
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gain := f.GainImportance()
	byName := map[string]float64{}
	var total float64
	for _, r := range gain {
		byName[r.Feature] = r.PctIncMSE
		total += r.PctIncMSE
	}
	if math.Abs(total-100) > 1e-6 {
		t.Errorf("gain shares sum to %.2f, want 100", total)
	}
	if !(byName["signal"] > byName["category"] && byName["category"] > byName["noise"]) {
		t.Errorf("gain ordering wrong: %v", byName)
	}
}
