package forest

import (
	"math"
	"sort"

	"lattice/internal/sim"
)

// treeNode is one node of a CART regression tree, stored in a flat
// slice for cache-friendly prediction.
type treeNode struct {
	feature   int     // -1 for leaves
	threshold float64 // numeric split: x <= threshold goes left
	catLeft   uint64  // categorical split: bit c set = category c goes left
	value     float64 // leaf prediction (mean response)
	left      int     // index of left child
	right     int     // index of right child
}

// regTree is a single regression tree grown on a bootstrap sample.
type regTree struct {
	nodes []treeNode
	oob   []int // row indices not drawn into the bootstrap sample
	// gain[f] accumulates the SSE reduction contributed by splits on
	// feature f (split-gain importance).
	gain []float64
}

// predict returns the tree's response for row x.
func (t *regTree) predict(x []float64, kinds []FeatureKind) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		v := x[n.feature]
		var goLeft bool
		if kinds[n.feature] == Categorical {
			goLeft = n.catLeft&(1<<uint(int(v))) != 0
		} else {
			goLeft = v <= n.threshold
		}
		if goLeft {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// treeBuilder grows one tree; it owns scratch buffers so concurrent
// builders never share state.
type treeBuilder struct {
	ds    *Dataset
	cfg   Config
	rng   *sim.RNG
	nodes []treeNode
	gain  []float64 // per-feature SSE reduction of the growing tree
}

// grow builds a tree from the given bootstrap sample rows.
func (b *treeBuilder) grow(rows []int) *regTree {
	b.nodes = b.nodes[:0]
	b.gain = make([]float64, b.ds.Schema.NumFeatures())
	b.buildNode(rows, 0)
	tr := &regTree{nodes: append([]treeNode(nil), b.nodes...), gain: b.gain}
	return tr
}

// buildNode recursively grows the subtree for rows; returns its index.
func (b *treeBuilder) buildNode(rows []int, depth int) int {
	idx := len(b.nodes)
	b.nodes = append(b.nodes, treeNode{feature: -1})
	mean := b.meanY(rows)
	b.nodes[idx].value = mean
	if len(rows) < 2*b.cfg.MinLeafSize || (b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) || b.pure(rows) {
		return idx
	}
	feat, thr, mask, splitSSE, ok := b.bestSplit(rows)
	if !ok {
		return idx
	}
	var left, right []int
	kinds := b.ds.Schema.Kinds
	for _, r := range rows {
		v := b.ds.X[r][feat]
		var goLeft bool
		if kinds[feat] == Categorical {
			goLeft = mask&(1<<uint(int(v))) != 0
		} else {
			goLeft = v <= thr
		}
		if goLeft {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.cfg.MinLeafSize || len(right) < b.cfg.MinLeafSize {
		return idx
	}
	b.nodes[idx].feature = feat
	b.nodes[idx].threshold = thr
	b.nodes[idx].catLeft = mask
	if g := b.sse(rows) - splitSSE; g > 0 {
		b.gain[feat] += g
	}
	l := b.buildNode(left, depth+1)
	r := b.buildNode(right, depth+1)
	b.nodes[idx].left = l
	b.nodes[idx].right = r
	return idx
}

func (b *treeBuilder) meanY(rows []int) float64 {
	var s float64
	for _, r := range rows {
		s += b.ds.Y[r]
	}
	return s / float64(len(rows))
}

// sse returns the sum of squared deviations of rows' responses.
func (b *treeBuilder) sse(rows []int) float64 {
	var sum, sq float64
	for _, r := range rows {
		y := b.ds.Y[r]
		sum += y
		sq += y * y
	}
	n := float64(len(rows))
	return sq - sum*sum/n
}

func (b *treeBuilder) pure(rows []int) bool {
	first := b.ds.Y[rows[0]]
	for _, r := range rows[1:] {
		//lint:allow floatcmp -- purity test compares stored responses bit-for-bit, as R's randomForest does
		if b.ds.Y[r] != first {
			return false
		}
	}
	return true
}

// bestSplit evaluates MTry randomly chosen covariates and returns the
// split minimizing the children's summed squared error, along with
// that SSE.
func (b *treeBuilder) bestSplit(rows []int) (feat int, thr float64, mask uint64, sse float64, ok bool) {
	p := b.ds.Schema.NumFeatures()
	mtry := b.cfg.MTry
	if mtry > p {
		mtry = p
	}
	perm := b.rng.Perm(p)
	bestSSE := math.Inf(1)
	for _, f := range perm[:mtry] {
		if b.ds.Schema.Kinds[f] == Categorical {
			if m, s2, valid := b.bestCategoricalSplit(rows, f); valid && s2 < bestSSE {
				bestSSE, feat, mask, thr, ok = s2, f, m, 0, true
			}
		} else {
			if t, s2, valid := b.bestNumericSplit(rows, f); valid && s2 < bestSSE {
				bestSSE, feat, thr, mask, ok = s2, f, t, 0, true
			}
		}
	}
	return feat, thr, mask, bestSSE, ok
}

// bestNumericSplit scans sorted unique values of feature f.
func (b *treeBuilder) bestNumericSplit(rows []int, f int) (thr, sse float64, ok bool) {
	type pair struct{ x, y float64 }
	ps := make([]pair, len(rows))
	for i, r := range rows {
		ps[i] = pair{b.ds.X[r][f], b.ds.Y[r]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	// Prefix sums for O(1) SSE of each split.
	n := len(ps)
	var sumL, sqL float64
	var sumR, sqR float64
	for _, p := range ps {
		sumR += p.y
		sqR += p.y * p.y
	}
	best := math.Inf(1)
	for i := 0; i < n-1; i++ {
		y := ps[i].y
		sumL += y
		sqL += y * y
		sumR -= y
		sqR -= y * y
		//lint:allow floatcmp -- adjacent sorted covariate values: a split threshold exists only between distinct stored values
		if ps[i+1].x == ps[i].x {
			continue // can't split between equal values
		}
		nl, nr := float64(i+1), float64(n-i-1)
		sseHere := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
		if sseHere < best {
			best = sseHere
			thr = (ps[i].x + ps[i+1].x) / 2
			ok = true
		}
	}
	return thr, best, ok
}

// bestCategoricalSplit orders category levels by mean response and
// scans that ordering — Fisher's method, optimal for regression
// without trying all 2^k subsets.
func (b *treeBuilder) bestCategoricalSplit(rows []int, f int) (mask uint64, sse float64, ok bool) {
	var sum, sq [maxCategories]float64
	var cnt [maxCategories]int
	for _, r := range rows {
		c := int(b.ds.X[r][f])
		y := b.ds.Y[r]
		sum[c] += y
		sq[c] += y * y
		cnt[c]++
	}
	type lvl struct {
		cat  int
		mean float64
	}
	var lvls []lvl
	for c := 0; c < maxCategories; c++ {
		if cnt[c] > 0 {
			lvls = append(lvls, lvl{c, sum[c] / float64(cnt[c])})
		}
	}
	if len(lvls) < 2 {
		return 0, 0, false
	}
	sort.Slice(lvls, func(i, j int) bool { return lvls[i].mean < lvls[j].mean })
	var totalSum, totalSq float64
	var totalN int
	for _, l := range lvls {
		totalSum += sum[l.cat]
		totalSq += sq[l.cat]
		totalN += cnt[l.cat]
	}
	best := math.Inf(1)
	var curMask uint64
	var sumL, sqL float64
	var nL int
	for i := 0; i < len(lvls)-1; i++ {
		c := lvls[i].cat
		curMask |= 1 << uint(c)
		sumL += sum[c]
		sqL += sq[c]
		nL += cnt[c]
		nR := totalN - nL
		if nL == 0 || nR == 0 {
			continue
		}
		sumR := totalSum - sumL
		sqR := totalSq - sqL
		sseHere := (sqL - sumL*sumL/float64(nL)) + (sqR - sumR*sumR/float64(nR))
		if sseHere < best {
			best = sseHere
			mask = curMask
			ok = true
		}
	}
	return mask, best, ok
}
