package forest

import (
	"math"
	"sync"
	"testing"

	"lattice/internal/sim"
)

// stressDataset builds a synthetic regression problem with numeric
// and categorical covariates.
func stressDataset(n int, seed int64) *Dataset {
	schema := &Schema{
		Names: []string{"a", "b", "c", "kind"},
		Kinds: []FeatureKind{Numeric, Numeric, Numeric, Categorical},
	}
	rng := sim.NewRNG(seed)
	ds := &Dataset{Schema: schema}
	for i := 0; i < n; i++ {
		a := rng.Uniform(0, 10)
		b := rng.Uniform(-5, 5)
		c := rng.Uniform(0, 1)
		k := float64(rng.Intn(4))
		y := 3*a - 2*b + 5*c*c + 4*k + rng.Normal(0, 0.5)
		ds.X = append(ds.X, []float64{a, b, c, k})
		ds.Y = append(ds.Y, y)
	}
	return ds
}

// TestTrainConcurrentStress trains several forests at once on one
// shared dataset under the race detector. Train clones the dataset
// and derives a per-tree RNG stream from the seed, so concurrent
// trainings must neither race nor disturb each other's determinism.
func TestTrainConcurrentStress(t *testing.T) {
	ds := stressDataset(300, 7)
	cfg := Config{NumTrees: 60, MinLeafSize: 3, Seed: 11, Workers: 4}

	const trainers = 4
	forests := make([]*Forest, trainers)
	var wg sync.WaitGroup
	for i := 0; i < trainers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := Train(ds, cfg)
			if err != nil {
				t.Errorf("trainer %d: %v", i, err)
				return
			}
			forests[i] = f
		}(i)
	}
	wg.Wait()

	// Same dataset, same seed: every concurrent training must land on
	// the identical model.
	probe := []float64{5, 0, 0.5, 2}
	want := forests[0].Predict(probe)
	if math.IsNaN(want) || math.IsInf(want, 0) {
		t.Fatalf("degenerate prediction %v", want)
	}
	for i := 1; i < trainers; i++ {
		if got := forests[i].Predict(probe); got != want {
			t.Errorf("trainer %d predicts %v, trainer 0 predicts %v; concurrent training is nondeterministic", i, got, want)
		}
		if got, first := forests[i].OOBMSE(), forests[0].OOBMSE(); got != first {
			t.Errorf("trainer %d OOB MSE %v differs from trainer 0's %v", i, got, first)
		}
	}
}

// TestForestConcurrentReaders hammers one trained forest from many
// goroutines: Predict, OOB accessors and both importance measures are
// read-only and must be safe to share.
func TestForestConcurrentReaders(t *testing.T) {
	ds := stressDataset(300, 19)
	f, err := Train(ds, Config{NumTrees: 60, MinLeafSize: 3, Seed: 23, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := sim.NewRNG(int64(100 + r))
			for i := 0; i < 50; i++ {
				x := []float64{rng.Uniform(0, 10), rng.Uniform(-5, 5), rng.Uniform(0, 1), float64(rng.Intn(4))}
				if p := f.Predict(x); math.IsNaN(p) {
					t.Errorf("reader %d: NaN prediction", r)
					return
				}
			}
			_ = f.OOBMSE()
			_ = f.PercentVarExplained()
			_ = f.Importance(int64(r))
			_ = f.GainImportance()
			_ = f.RankedImportance(int64(r))
		}(r)
	}
	wg.Wait()
}
