// Package lattice is the public API of the Lattice grid computing
// system — a from-scratch Go reproduction of "Computing the Tree of
// Life: Leveraging the Power of Desktop and Service Grids" (Bazinet &
// Cummings, 2011).
//
// The system combines service grids (Condor pools and PBS/SGE clusters
// federated through Globus-style middleware) with a BOINC desktop grid,
// schedules GARLI maximum-likelihood phylogenetic analyses across the
// federation, and predicts job runtimes a priori with random forests to
// drive placement, BOINC deadlines, and replicate bundling.
//
// Quick start:
//
//	cfg := lattice.DefaultConfig(42)
//	grid, err := lattice.New(cfg)
//	if err != nil { ... }
//	batch, err := grid.SubmitSubmission(lattice.Submission{ ... })
//	grid.Run(30 * lattice.Day)
//
// The heavy lifting lives in the internal packages; this package
// re-exports the supported surface:
//
//   - grid assembly and operation (internal/core)
//   - GARLI job specifications and workload generation
//     (internal/workload)
//   - runtime estimation with random forests (internal/estimate,
//     internal/forest)
//   - the phylogenetic inference engine itself (internal/phylo)
package lattice

import (
	"lattice/internal/beagle"
	"lattice/internal/core"
	"lattice/internal/estimate"
	"lattice/internal/forest"
	"lattice/internal/gsbl"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// Grid assembly and operation.
type (
	// Config describes a Lattice deployment (resources, scheduler
	// policy, estimator bootstrap).
	Config = core.Config
	// Lattice is a running grid system.
	Lattice = core.Lattice
	// ResourceSpec declares one federation member.
	ResourceSpec = core.ResourceSpec
	// Batch tracks one submission through the grid.
	Batch = gsbl.Batch
	// BatchStatus summarizes batch progress.
	BatchStatus = gsbl.BatchStatus
	// SchedulerConfig is grid-level scheduling policy.
	SchedulerConfig = metasched.Config
	// SchedulerPolicy selects naive / speed-aware / full ranking.
	SchedulerPolicy = metasched.Policy
)

// New assembles and starts a grid from a configuration.
func New(cfg Config) (*Lattice, error) { return core.New(cfg) }

// DefaultConfig returns the paper's federation at laptop scale.
func DefaultConfig(seed int64) Config { return core.DefaultConfig(seed) }

// Scheduler policies.
const (
	PolicyNaive      = metasched.PolicyNaive
	PolicySpeedAware = metasched.PolicySpeedAware
	PolicyFull       = metasched.PolicyFull
)

// Workload: GARLI jobs and submissions.
type (
	// JobSpec is a GARLI analysis specification; its nine parameters
	// are the runtime model's predictors.
	JobSpec = workload.JobSpec
	// Submission is a portal submission of up to 2000 replicates.
	Submission = workload.Submission
	// Generator draws jobs/submissions from the portal's user
	// population.
	Generator = workload.Generator
)

// NewGenerator returns a deterministic workload generator.
func NewGenerator(seed int64) *Generator { return workload.NewGenerator(seed) }

// MaxReplicates is the portal's per-submission replicate limit.
const MaxReplicates = workload.MaxReplicates

// Runtime estimation.
type (
	// Estimator predicts GARLI runtimes with a random forest and
	// retrains continuously.
	Estimator = estimate.Estimator
	// EstimatorConfig sizes the forest.
	EstimatorConfig = estimate.Config
	// ForestConfig configures raw random-forest training.
	ForestConfig = forest.Config
	// Dataset is a random-forest design matrix.
	Dataset = forest.Dataset
	// Forest is a trained random-forest regression model.
	Forest = forest.Forest
)

// NewEstimator returns an estimator with an empty training matrix.
func NewEstimator(cfg EstimatorConfig) *Estimator { return estimate.New(cfg) }

// BootstrapEstimator seeds and trains an estimator with n generated
// jobs (the paper's ~150-job matrix).
func BootstrapEstimator(cfg EstimatorConfig, gen *Generator, n int) (*Estimator, error) {
	return estimate.Bootstrap(cfg, gen, n)
}

// TrainForest trains a random forest regression model.
func TrainForest(ds *Dataset, cfg ForestConfig) (*Forest, error) { return forest.Train(ds, cfg) }

// Phylogenetics: the GARLI-equivalent engine.
type (
	// Alignment is a multiple sequence alignment.
	Alignment = phylo.Alignment
	// Tree is a phylogenetic tree.
	Tree = phylo.Tree
	// Model is a substitution model.
	Model = phylo.Model
	// SiteRates is an among-site rate mixture.
	SiteRates = phylo.SiteRates
	// SearchConfig controls the genetic-algorithm tree search.
	SearchConfig = phylo.SearchConfig
	// SearchResult is a completed search.
	SearchResult = phylo.SearchResult
	// DataType is nucleotide / amino acid / codon.
	DataType = phylo.DataType
)

// Data types.
const (
	Nucleotide = phylo.Nucleotide
	AminoAcid  = phylo.AminoAcid
	Codon      = phylo.Codon
)

// RateHetKind selects among-site rate heterogeneity treatment.
type RateHetKind = phylo.RateHetKind

// Rate heterogeneity treatments.
const (
	RateHomogeneous = phylo.RateHomogeneous
	RateGamma       = phylo.RateGamma
	RateGammaInv    = phylo.RateGammaInv
)

// StartingTreeKind selects how searches build their initial tree.
type StartingTreeKind = phylo.StartingTreeKind

// Starting tree kinds.
const (
	StartRandom   = phylo.StartRandom
	StartStepwise = phylo.StartStepwise
	StartUser     = phylo.StartUser
)

// Phylogenetics: partitioned models and optimized evaluation.
type (
	// Evaluator is any tree log-likelihood engine the GA search can
	// drive.
	Evaluator = phylo.Evaluator
	// Partition couples a data block with its own model and rates.
	Partition = phylo.Partition
	// PartitionedLikelihood evaluates several partitions on one tree.
	PartitionedLikelihood = phylo.PartitionedLikelihood
	// IncrementalEvaluator is an Evaluator with explicit cache
	// invalidation (the beagle backend's incremental re-evaluation).
	IncrementalEvaluator = phylo.IncrementalEvaluator
	// EvaluatorPool scores GA populations and search replicates in
	// parallel, one engine per worker, bit-deterministically.
	EvaluatorPool = phylo.EvaluatorPool
	// EvaluatorFactory builds one pool worker's engine.
	EvaluatorFactory = phylo.EvaluatorFactory
	// BeagleEngine is the optimized likelihood backend (this
	// repository's BEAGLE analogue).
	BeagleEngine = beagle.Engine
	// BeagleStats is a snapshot of a BeagleEngine's cache and work
	// counters.
	BeagleStats = beagle.Stats
	// NexusFile is a parsed NEXUS document (data matrix + trees).
	NexusFile = phylo.NexusFile
)

// NewPartitionedLikelihood builds a joint evaluator over partitions
// sharing one tree.
func NewPartitionedLikelihood(parts []Partition) (*PartitionedLikelihood, error) {
	return phylo.NewPartitionedLikelihood(parts)
}

// NewBeagleEngine builds the optimized likelihood backend.
func NewBeagleEngine(data *phylo.PatternData, model *Model, rates *SiteRates) (*BeagleEngine, error) {
	return beagle.New(data, model, rates)
}

// NewEvaluatorPool builds a pool of `workers` engines for parallel
// population scoring and replicate-parallel search.
func NewEvaluatorPool(workers int, factory EvaluatorFactory) (*EvaluatorPool, error) {
	return phylo.NewEvaluatorPool(workers, factory)
}

// SearchParallel runs the GA tree search across a pool of evaluators;
// results are bit-deterministic for a fixed seed regardless of worker
// count.
func SearchParallel(pool *EvaluatorPool, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	return phylo.SearchParallel(pool, names, cfg, rng)
}

// Virtual time units for Lattice.Run.
type Duration = sim.Duration

// Durations.
const (
	Second = sim.Second
	Minute = sim.Minute
	Hour   = sim.Hour
	Day    = sim.Day
	Week   = sim.Week
	Year   = sim.Year
)
