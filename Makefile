GO ?= go

# The likelihood-engine micro-benchmarks (incremental re-evaluation
# and parallel population scoring); see EXPERIMENTS.md "Performance".
# Baselined in BENCH_PR2.json, re-baselined after the PR7 kernel
# rebuild in BENCH_PR7.json.
BENCH_PATTERN = SearchEval50|Search50|ParallelScore

# The PR4 fault-injection overhead benchmarks (fault-off vs fault-on);
# see EXPERIMENTS.md "Fault injection".
FAULT_BENCH_PATTERN = FaultScenario

# The PR5 write-ahead-log overhead benchmarks (wal-off vs wal-on); see
# EXPERIMENTS.md "Crash recovery".
WAL_BENCH_PATTERN = WALScenario

# The PR8 workflow-engine benchmarks (flat manual chaining vs one
# typed DAG); see EXPERIMENTS.md "Workflow engine".
DAG_BENCH_PATTERN = DagWorkflow

# The PR9 coordinator-sharding benchmarks (10^5 users through 1/2/4/8
# shards); see EXPERIMENTS.md "Scale-out".
SCALE_BENCH_PATTERN = ScaleOut

# The PR10 overload-protection benchmarks (10× demand spike, protected
# vs unprotected); see EXPERIMENTS.md "Overload".
OVERLOAD_BENCH_PATTERN = OverloadScenario

# Machine-readable analyzer report: every finding, suppressed ones
# included and marked, for dashboards and suppression audits.
LINT_ARTIFACT = latticelint.json

.PHONY: all build vet lint lint-fixtures test race smoke faults crash dag scale overload check bench bench-smoke bench-json bench-json-engine bench-json-faults bench-json-wal bench-json-dag bench-json-scale bench-json-overload

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# latticelint is the project's own analyzer suite (cmd/latticelint):
# five per-package analyzers (determinism, errdrop, floatcmp,
# syncmisuse, deadassign) plus three whole-program dataflow analyzers
# (lockorder, goroleak, taintdet). One run writes the JSON artifact
# and exits non-zero on any unsuppressed finding; on failure, a second
# text-mode run prints the findings for humans.
lint:
	$(GO) run ./cmd/latticelint -json ./... > $(LINT_ARTIFACT) || { $(GO) run ./cmd/latticelint ./...; exit 1; }

# lint-fixtures runs the analyzer self-tests under the race detector:
# every analyzer against its bad/good fixture pair, the combined
# injector and WAL fixtures, the suppression-marking contract, and the
# loader edge cases (tests-only package, build-tag exclusion, syntax
# error).
lint-fixtures:
	$(GO) test -race -run 'TestAnalyzerFixtures|TestFaultsInjectorFixture|TestWALFixture|TestGoodFixturesClean|TestSuppressionMarked|TestLoader' ./internal/lint/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke boots the full grid binary on a loopback port, runs a fixed
# workload, scrapes /metrics and /trace over real HTTP, and fails if
# the exposition is empty or unparseable.
smoke:
	$(GO) run ./cmd/lattice -smoke

# bench runs the engine micro-benchmarks at measurement quality.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem .

# bench-smoke executes every benchmark body exactly once — a CI gate
# so benchmark code cannot rot.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x .

# bench-json regenerates the committed benchmark artifact.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR2.json

# bench-json-engine regenerates the committed post-kernel-rebuild
# engine artifact (tip-specialized fused kernels, per-tree partials
# banks, warm-started pools).
bench-json-engine:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR7.json

# bench-json-faults regenerates the committed fault-injection
# overhead artifact (fault-off vs fault-on grid runs).
bench-json-faults:
	$(GO) test -run '^$$' -bench '$(FAULT_BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR4.json

# bench-json-wal regenerates the committed durability overhead
# artifact (wal-off vs wal-on grid runs).
bench-json-wal:
	$(GO) test -run '^$$' -bench '$(WAL_BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR5.json

# bench-json-dag regenerates the committed workflow-engine artifact
# (flat manual chaining vs one typed DAG: wall time and mean
# stage-queue wait).
bench-json-dag:
	$(GO) test -run '^$$' -bench '$(DAG_BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR8.json

# bench-json-scale regenerates the committed coordinator-sharding
# artifact (virtual makespan, throughput, front-door wait and queue
# depth at 1/2/4/8 shards).
bench-json-scale:
	$(GO) test -run '^$$' -bench '$(SCALE_BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR9.json

# bench-json-overload regenerates the committed overload-protection
# artifact (goodput ratio, shed counts, p99 front-door wait: protected
# vs unprotected under the 10× spike).
bench-json-overload:
	$(GO) test -run '^$$' -bench '$(OVERLOAD_BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR10.json

# faults runs the fault-injection scenario under the race detector:
# conservation (every job exactly one terminal state) and same-seed
# determinism under the default hostile schedule.
faults:
	$(GO) test -race -run TestFaultScenarioShape ./internal/experiments/

# crash runs the crash-recovery scenario under the race detector: the
# coordinator killed three times mid-batch (once over a torn log
# tail), recovered from the WAL each time, with conservation intact
# and the final journal digest bit-identical to an uninterrupted run.
crash:
	$(GO) test -race -run TestCrashScenarioShape ./internal/experiments/

# dag runs both workflow-engine scenarios under the race detector: the
# four-stage standard analysis as one typed DAG (readiness ordering,
# service-grid placement of short stages, conservation, same-seed
# determinism) and the same graph killed three times mid-workflow and
# recovered from the WAL with a bit-identical final digest.
dag:
	$(GO) test -race -run 'TestDagScenarioShape|TestDagCrashScenarioShape' ./internal/experiments/

# scale runs the coordinator-sharding scenario under the race
# detector: 10^5 simulated users through 1/2/4/8 shards with
# conservation and bit-identical same-seed twin digests at every
# shard count, strictly improving makespan 1→2→4, and a shard kill
# recovered from that shard's WAL alone, digest-equal to an
# uninterrupted twin.
scale:
	$(GO) test -race -timeout 30m -run TestScaleOutShape ./internal/experiments/

# overload runs the overload-protection scenario under the race
# detector: a 10× demand spike through protected 1- and 4-shard
# clusters (conservation including sheds, bit-identical same-seed twin
# digests, goodput ≥ 90% of the pre-spike rate, breakers tripping on
# the mid-spike brownout) against an unprotected baseline whose p99
# front-door wait blows up by ≥ 10×.
overload:
	$(GO) test -race -timeout 10m -run TestOverloadScenarioShape ./internal/experiments/

# check is the full correctness gate: compile, go vet, the project
# analyzers (failing on any unsuppressed finding), the analyzer
# fixture self-tests under -race, the test suite under the race
# detector (which includes the forest/BOINC concurrency stress tests),
# the fault-injection, crash-recovery, workflow, coordinator sharding
# and overload-protection scenarios under -race, the grid boot smoke
# that scrapes /metrics over real HTTP, and one execution of every
# engine benchmark body so benchmark code cannot rot.
check: build vet lint lint-fixtures race faults crash dag scale overload smoke bench-smoke
