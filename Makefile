GO ?= go

.PHONY: all build vet lint test race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# latticelint is the project's own analyzer suite (cmd/latticelint):
# determinism, errdrop, floatcmp, syncmisuse, deadassign. Exits
# non-zero on any finding.
lint:
	$(GO) run ./cmd/latticelint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full correctness gate: compile, go vet, the project
# analyzers, and the test suite under the race detector (which
# includes the forest/BOINC concurrency stress tests).
check: build vet lint race
