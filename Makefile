GO ?= go

# The PR2 engine micro-benchmarks (incremental re-evaluation and
# parallel population scoring); see EXPERIMENTS.md "Performance".
BENCH_PATTERN = SearchEval50|Search50|ParallelScore

.PHONY: all build vet lint test race check bench bench-smoke bench-json

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# latticelint is the project's own analyzer suite (cmd/latticelint):
# determinism, errdrop, floatcmp, syncmisuse, deadassign. Exits
# non-zero on any finding.
lint:
	$(GO) run ./cmd/latticelint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the engine micro-benchmarks at measurement quality.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem .

# bench-smoke executes every benchmark body exactly once — a CI gate
# so benchmark code cannot rot.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x .

# bench-json regenerates the committed benchmark artifact.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR2.json

# check is the full correctness gate: compile, go vet, the project
# analyzers, and the test suite under the race detector (which
# includes the forest/BOINC concurrency stress tests).
check: build vet lint race
