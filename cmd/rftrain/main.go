// Command rftrain trains and inspects the GARLI runtime-prediction
// model: it regenerates the paper's Figure 2 (variable importance),
// prints model fit statistics (~93% variance explained in the paper),
// runs cross-validation, and answers ad-hoc runtime queries.
//
// Usage:
//
//	rftrain -fig2                  # Figure 2 at paper scale
//	rftrain -stats -jobs 300       # fit statistics on a larger matrix
//	rftrain -cv 5                  # 5-fold cross-validation
//	rftrain -predict -taxa 80 -seqlen 2000 -dt nucleotide -ratehet gamma
package main

import (
	"flag"
	"fmt"
	"os"

	"lattice/internal/estimate"
	"lattice/internal/experiments"
	"lattice/internal/phylo"
	"lattice/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rftrain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		jobs    = flag.Int("jobs", 150, "training matrix size (paper: ~150)")
		trees   = flag.Int("trees", 10000, "forest size (paper: 10^4)")
		seed    = flag.Int64("seed", 1, "random seed")
		fig2    = flag.Bool("fig2", false, "print the Figure 2 importance table")
		stats   = flag.Bool("stats", false, "print model fit statistics")
		cv      = flag.Int("cv", 0, "run k-fold cross-validation")
		doPred  = flag.Bool("predict", false, "predict a single job's runtime")
		taxa    = flag.Int("taxa", 50, "predict: number of taxa")
		seqlen  = flag.Int("seqlen", 1500, "predict: sequence length")
		dt      = flag.String("dt", "nucleotide", "predict: data type")
		model   = flag.String("model", "GTR", "predict: substitution model")
		ratehet = flag.String("ratehet", "gamma", "predict: rate heterogeneity")
		reps    = flag.Int("searchreps", 1, "predict: search replicates")
	)
	flag.Parse()
	if !*fig2 && !*stats && *cv == 0 && !*doPred {
		*fig2 = true // default action
	}

	if *fig2 {
		r, err := experiments.Fig2(*seed, *jobs, *trees)
		if err != nil {
			return err
		}
		fmt.Print(r)
	}
	if *stats {
		est, err := estimate.Bootstrap(
			estimate.Config{NumTrees: *trees, MTry: 3, Seed: *seed},
			workload.NewGenerator(*seed), *jobs)
		if err != nil {
			return err
		}
		st, err := est.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("training matrix: %d jobs, %d trees\n", *jobs, *trees)
		fmt.Printf("variance explained (model scale): %.1f%% (paper: ~93%%)\n", st.PctVarExplained)
		fmt.Printf("variance explained (raw seconds): %.1f%%\n", st.RawPctVarExplained)
		fmt.Printf("typical prediction error: ×%.2f\n", st.TypicalErrorFactor)
	}
	if *cv > 0 {
		r, err := experiments.CrossValidation(*seed, *jobs, *cv)
		if err != nil {
			return err
		}
		fmt.Print(r)
	}
	if *doPred {
		dtv, err := phylo.ParseDataType(*dt)
		if err != nil {
			return err
		}
		het, err := phylo.ParseRateHetKind(*ratehet)
		if err != nil {
			return err
		}
		spec := workload.JobSpec{
			DataType: dtv, SubstModel: *model, RateHet: het,
			NumRateCats: 4, GammaShape: 0.5,
			NumTaxa: *taxa, SeqLength: *seqlen, SearchReps: *reps,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 25, Seed: *seed,
		}
		if het == phylo.RateGammaInv {
			spec.PropInvariant = 0.2
		}
		if err := spec.Validate(); err != nil {
			return err
		}
		est, err := estimate.Bootstrap(
			estimate.Config{NumTrees: *trees, MTry: 3, Seed: *seed},
			workload.NewGenerator(*seed), *jobs)
		if err != nil {
			return err
		}
		pred, err := est.Predict(&spec)
		if err != nil {
			return err
		}
		fmt.Printf("predicted runtime on the reference computer: %.2f hours (%.0f s)\n", pred/3600, pred)
		fmt.Printf("memory requirement: %d MB\n", spec.MemoryMB())
		for _, speed := range []float64{0.5, 1.0, 2.0} {
			p, err := est.PredictOn(&spec, speed)
			if err != nil {
				return err
			}
			fmt.Printf("  on a speed-%.1f resource: %.2f hours\n", speed, p/3600)
		}
	}
	return nil
}
