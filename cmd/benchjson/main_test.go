package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"lattice/internal/obs"
)

const sample = `goos: linux
goarch: amd64
pkg: lattice
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSearchEval50/reference         	     100	  10371668 ns/op	   9038848 cells/op	 1024 B/op	       3 allocs/op
BenchmarkSearchEval50/beagle-incremental	    2000	    539519 ns/op	    503193 cells/op
--- BENCH: BenchmarkSearch50
    bench_test.go:1: some log output
PASS
ok  	lattice	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "lattice" {
		t.Errorf("bad metadata: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("bad cpu: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkSearchEval50/reference" || b0.Iterations != 100 {
		t.Errorf("bad first benchmark: %+v", b0)
	}
	if b0.Metrics["ns/op"] != 10371668 || b0.Metrics["cells/op"] != 9038848 ||
		b0.Metrics["B/op"] != 1024 || b0.Metrics["allocs/op"] != 3 {
		t.Errorf("bad metrics: %+v", b0.Metrics)
	}
	b1 := rep.Benchmarks[1]
	if b1.Metrics["ns/op"] != 539519 || len(b1.Metrics) != 2 {
		t.Errorf("bad second metrics: %+v", b1.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok lattice 1s\n")); err == nil {
		t.Error("expected error for input with no benchmark lines")
	}
}

func TestObsSnapshotEmbedding(t *testing.T) {
	const exposition = `# HELP lattice_sched_jobs_submitted_total Jobs accepted by the meta-scheduler
# TYPE lattice_sched_jobs_submitted_total counter
lattice_sched_jobs_submitted_total 42
# HELP lattice_sched_placements_total Placement decisions by resource and ranking policy
# TYPE lattice_sched_placements_total counter
lattice_sched_placements_total{policy="full",resource="boinc-main"} 17
`
	f := t.TempDir() + "/metrics.txt"
	if err := os.WriteFile(f, []byte(exposition), 0o644); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	series, err := obs.ParseExposition(string(text))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep.Obs = series
	if rep.Obs["lattice_sched_jobs_submitted_total"] != 42 {
		t.Errorf("plain series lost: %v", rep.Obs)
	}
	if rep.Obs[`lattice_sched_placements_total{policy="full",resource="boinc-main"}`] != 17 {
		t.Errorf("labeled series lost: %v", rep.Obs)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"obs"`) {
		t.Errorf("report JSON missing obs section: %s", out)
	}
}
