// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout — the format of the repository's
// committed BENCH_*.json artifacts.
//
// Usage:
//
//	go test -run '^$' -bench 'SearchEval50' -benchmem . | benchjson > BENCH_PR2.json
//	... | benchjson -obs metrics.txt > BENCH.json   # attach an obs snapshot
//
// With -obs, the named file is read as a Prometheus-style text
// exposition (what /metrics serves) and its series are embedded in the
// report under "obs", so a benchmark artifact can carry the grid's
// metrics snapshot from the same run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lattice/internal/obs"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Obs holds the series of an optional observability snapshot
	// (-obs file), keyed by "name{labels}".
	Obs map[string]float64 `json:"obs,omitempty"`
}

func main() {
	obsFile := flag.String("obs", "", "optional /metrics snapshot file to embed in the report")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *obsFile != "" {
		text, err := os.ReadFile(*obsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.Obs, err = obs.ParseExposition(string(text))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *obsFile, err)
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output. Header lines (goos/goarch/pkg/
// cpu) fill the report metadata; each "BenchmarkX  N  v unit [v unit…]"
// line becomes one Benchmark. Everything else (PASS, ok, test logs) is
// skipped.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rep, nil
}
