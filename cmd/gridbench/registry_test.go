package main

import (
	"strings"
	"testing"
)

// TestRegistryShape pins the registry's contract with -list and -run:
// unique lower-case IDs, and a non-empty title and one-line
// description for every scenario.
func TestRegistryShape(t *testing.T) {
	if len(registry) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, e := range registry {
		if e.id == "" || e.id != strings.ToLower(e.id) || strings.ContainsAny(e.id, " ,") {
			t.Errorf("id %q: -run matching lower-cases and comma-splits its input", e.id)
		}
		if seen[e.id] {
			t.Errorf("duplicate id %q", e.id)
		}
		seen[e.id] = true
		if e.title == "" {
			t.Errorf("%s: empty title", e.id)
		}
		if e.desc == "" {
			t.Errorf("%s: empty description", e.id)
		}
		if strings.Contains(e.desc, "\n") {
			t.Errorf("%s: description must be one line", e.id)
		}
		if e.fn == nil {
			t.Errorf("%s: nil runner", e.id)
		}
	}
	for _, id := range []string{"fig2", "faults", "crash", "dag", "scale"} {
		if !seen[id] {
			t.Errorf("registry lost the %q scenario", id)
		}
	}
}
