package main

import (
	"fmt"

	"lattice/internal/experiments"
)

// experiment couples an ID to its runner.
type experiment struct {
	id    string
	title string
	fn    func(seed int64) (fmt.Stringer, error)
}

// registry lists every reproducible artifact in paper order.
var registry = []experiment{
	{"fig2", "Figure 2 — runtime predictor variable importance (10^4 trees)",
		func(s int64) (fmt.Stringer, error) { return experiments.Fig2(s, 150, 10000) }},
	{"e3cv", "E3a — cross-validation of runtime predictions",
		func(s int64) (fmt.Stringer, error) { return experiments.CrossValidation(s, 150, 5) }},
	{"e3", "E3b — scheduling with vs without runtime estimates",
		func(s int64) (fmt.Stringer, error) { return experiments.SchedulingEffect(s) }},
	{"e4", "E4 — scheduler ranking policies (naive / speed-aware / full)",
		func(s int64) (fmt.Stringer, error) { return experiments.SchedulerRanking(s) }},
	{"e5", "E5 — stability gating of long jobs",
		func(s int64) (fmt.Stringer, error) { return experiments.StabilityGating(s) }},
	{"e6", "E6 — resource speed calibration",
		func(s int64) (fmt.Stringer, error) { return experiments.SpeedCalibration(s) }},
	{"e7", "E7 — BOINC deadlines: manual vs estimate-driven",
		func(s int64) (fmt.Stringer, error) { return experiments.BoincDeadlines(s) }},
	{"e8", "E8 — BOINC work-request sizing",
		func(s int64) (fmt.Stringer, error) { return experiments.WorkFetch(s) }},
	{"e9", "E9 — replicate bundling for very short jobs",
		func(s int64) (fmt.Stringer, error) { return experiments.ReplicateBundling(s) }},
	{"e10", "E10 — 2000-replicate submission across deployment scales",
		func(s int64) (fmt.Stringer, error) { return experiments.PortalScale(s) }},
	{"e11", "E11 — federation at the paper's published scale",
		func(s int64) (fmt.Stringer, error) { return experiments.SystemScale(s) }},
	{"e13", "E13 — continuous model retraining under drift",
		func(s int64) (fmt.Stringer, error) { return experiments.ContinuousRetraining(s) }},
	{"e14", "E14 — estimate gating vs checkpoint cycling",
		func(s int64) (fmt.Stringer, error) { return experiments.CheckpointAlternative(s) }},
	{"perf", "Engine performance — tip-specialized fused kernels, incremental re-evaluation, parallel scoring",
		func(s int64) (fmt.Stringer, error) { return experiments.EnginePerf(s, 20, 300, 80) }},
	{"faults", "Fault injection — conservation and determinism under a hostile schedule",
		func(s int64) (fmt.Stringer, error) { return experiments.FaultScenario(s) }},
	{"crash", "Crash recovery — coordinator killed mid-batch, resumed from the WAL",
		func(s int64) (fmt.Stringer, error) { return experiments.CrashScenario(s) }},
	{"dag", "Workflow engine — four-stage analysis as one typed DAG",
		func(s int64) (fmt.Stringer, error) { return experiments.DagScenario(s) }},
	{"dagcrash", "Workflow crash recovery — coordinator killed mid-graph, resumed from the WAL",
		func(s int64) (fmt.Stringer, error) { return experiments.DagCrashScenario(s) }},
	{"abl-mtry", "Ablation — covariate subsampling (mtry)",
		func(s int64) (fmt.Stringer, error) { return experiments.AblationMtry(s, 150) }},
	{"abl-size", "Ablation — forest size",
		func(s int64) (fmt.Stringer, error) { return experiments.AblationForestSize(s, 150) }},
	{"abl-imp", "Ablation — permutation vs split-gain importance",
		func(s int64) (fmt.Stringer, error) { return experiments.AblationImportanceMethod(s, 150) }},
}
