package main

import (
	"fmt"

	"lattice/internal/experiments"
)

// experiment couples an ID to its runner. title is the headline shown
// above the tables; desc is the one-line summary -list prints — what
// the scenario measures and why it exists.
type experiment struct {
	id    string
	title string
	desc  string
	fn    func(seed int64) (fmt.Stringer, error)
}

// registry lists every reproducible artifact in paper order.
var registry = []experiment{
	{"fig2", "Figure 2 — runtime predictor variable importance (10^4 trees)",
		"Ranks the covariates of the random-forest runtime model by permutation importance.",
		func(s int64) (fmt.Stringer, error) { return experiments.Fig2(s, 150, 10000) }},
	{"e3cv", "E3a — cross-validation of runtime predictions",
		"Measures held-out prediction quality of the runtime model (the paper's ~93% variance explained).",
		func(s int64) (fmt.Stringer, error) { return experiments.CrossValidation(s, 150, 5) }},
	{"e3", "E3b — scheduling with vs without runtime estimates",
		"Compares batch makespan when the scheduler is blind vs estimate-driven.",
		func(s int64) (fmt.Stringer, error) { return experiments.SchedulingEffect(s) }},
	{"e4", "E4 — scheduler ranking policies (naive / speed-aware / full)",
		"Sweeps the ranking criteria to show each term's contribution to placement quality.",
		func(s int64) (fmt.Stringer, error) { return experiments.SchedulerRanking(s) }},
	{"e5", "E5 — stability gating of long jobs",
		"Shows long jobs avoiding unstable pools once stability feeds the ranking.",
		func(s int64) (fmt.Stringer, error) { return experiments.StabilityGating(s) }},
	{"e6", "E6 — resource speed calibration",
		"Recovers per-resource speed factors from benchmark jobs, as the paper's procedure does.",
		func(s int64) (fmt.Stringer, error) { return experiments.SpeedCalibration(s) }},
	{"e7", "E7 — BOINC deadlines: manual vs estimate-driven",
		"Compares volunteer-grid deadline policies on timeout waste and turnaround.",
		func(s int64) (fmt.Stringer, error) { return experiments.BoincDeadlines(s) }},
	{"e8", "E8 — BOINC work-request sizing",
		"Sizes volunteer work requests by estimated runtime instead of fixed counts.",
		func(s int64) (fmt.Stringer, error) { return experiments.WorkFetch(s) }},
	{"e9", "E9 — replicate bundling for very short jobs",
		"Bundles sub-minute replicates so per-job overhead stops dominating.",
		func(s int64) (fmt.Stringer, error) { return experiments.ReplicateBundling(s) }},
	{"e10", "E10 — 2000-replicate submission across deployment scales",
		"Pushes one portal-scale batch through growing federations.",
		func(s int64) (fmt.Stringer, error) { return experiments.PortalScale(s) }},
	{"e11", "E11 — federation at the paper's published scale",
		"Runs the full published resource roster to reproduce system-scale throughput.",
		func(s int64) (fmt.Stringer, error) { return experiments.SystemScale(s) }},
	{"e13", "E13 — continuous model retraining under drift",
		"Retrains the runtime model on reference-cluster forks as the workload drifts.",
		func(s int64) (fmt.Stringer, error) { return experiments.ContinuousRetraining(s) }},
	{"e14", "E14 — estimate gating vs checkpoint cycling",
		"Compares the paper's estimate-gated placement against the checkpoint-cycling alternative it declined.",
		func(s int64) (fmt.Stringer, error) { return experiments.CheckpointAlternative(s) }},
	{"perf", "Engine performance — tip-specialized fused kernels, incremental re-evaluation, parallel scoring",
		"Benchmarks the likelihood-engine hot path before/after the kernel rebuild.",
		func(s int64) (fmt.Stringer, error) { return experiments.EnginePerf(s, 20, 300, 80) }},
	{"faults", "Fault injection — conservation and determinism under a hostile schedule",
		"Proves exactly-one-terminal conservation and same-seed determinism under outages, flaps and lossy channels.",
		func(s int64) (fmt.Stringer, error) { return experiments.FaultScenario(s) }},
	{"crash", "Crash recovery — coordinator killed mid-batch, resumed from the WAL",
		"Kills the coordinator three times mid-batch and verifies bit-identical recovery from the write-ahead log.",
		func(s int64) (fmt.Stringer, error) { return experiments.CrashScenario(s) }},
	{"dag", "Workflow engine — four-stage analysis as one typed DAG",
		"Runs model-selection → search ∥ bootstrap → consensus as a typed DAG with readiness ordering.",
		func(s int64) (fmt.Stringer, error) { return experiments.DagScenario(s) }},
	{"dagcrash", "Workflow crash recovery — coordinator killed mid-graph, resumed from the WAL",
		"Kills the coordinator mid-workflow and verifies the DAG resumes with a bit-identical digest.",
		func(s int64) (fmt.Stringer, error) { return experiments.DagCrashScenario(s) }},
	{"abl-mtry", "Ablation — covariate subsampling (mtry)",
		"Sweeps the forest's per-split covariate sample size.",
		func(s int64) (fmt.Stringer, error) { return experiments.AblationMtry(s, 150) }},
	{"abl-size", "Ablation — forest size",
		"Sweeps the number of trees against prediction quality.",
		func(s int64) (fmt.Stringer, error) { return experiments.AblationForestSize(s, 150) }},
	{"abl-imp", "Ablation — permutation vs split-gain importance",
		"Compares the two importance estimators on the same forests.",
		func(s int64) (fmt.Stringer, error) { return experiments.AblationImportanceMethod(s, 150) }},
	{"scale", "Scale-out — 10^5 users through 1/2/4/8 coordinator shards, with crash variant",
		"Sweeps coordinator shard counts under a million-user-scale load: makespan, queue depth, twin digests, shard-local crash recovery.",
		func(s int64) (fmt.Stringer, error) { return experiments.ScaleOut(s) }},
	{"overload", "Overload — 10× demand spike with admission control, fair-share shedding and circuit breakers",
		"Drives a demand spike through protected 1- and 4-shard clusters vs an unprotected baseline: shed accounting, goodput, twin digests, p99 front-door wait.",
		func(s int64) (fmt.Stringer, error) { return experiments.OverloadScenario(s) }},
}
