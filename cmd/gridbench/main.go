// Command gridbench regenerates the paper's evaluation artifacts from
// the command line — the same experiments the benchmark suite runs,
// printed as tables.
//
// Usage:
//
//	gridbench -list
//	gridbench -run fig2,e4,e5
//	gridbench -run all -seed 42
//	gridbench -run e4 -obs        # append /metrics snapshots per config
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lattice/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		sel     = flag.String("run", "all", "comma-separated experiment IDs or 'all'")
		seed    = flag.Int64("seed", 1, "random seed")
		withObs = flag.Bool("obs", false, "print each configuration's final /metrics snapshot after its table")
	)
	flag.Parse()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n%-10s   %s\n", e.id, e.title, "", e.desc)
		}
		return nil
	}
	want := map[string]bool{}
	all := strings.EqualFold(*sel, "all")
	for _, s := range strings.Split(*sel, ",") {
		want[strings.ToLower(strings.TrimSpace(s))] = true
	}
	ran := 0
	for _, e := range registry {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.title)
		out, err := e.fn(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println(out)
		if *withObs {
			for _, ne := range experiments.ObsExpositions(out) {
				fmt.Printf("--- metrics snapshot: %s ---\n%s\n", ne.Name, ne.Exposition)
			}
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q; try -list", *sel)
	}
	return nil
}
