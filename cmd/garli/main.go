// Command garli is the standalone phylogenetic analysis program: a
// GARLI-style maximum-likelihood tree search over an input alignment,
// with optional bootstrapping, majority-rule consensus, and
// checkpointing — the application binary the grid distributes.
//
// Usage:
//
//	garli -data seqs.fasta -datatype nucleotide -model GTR \
//	      -ratehet gamma -searchreps 2 -bootstrap 100 -out run1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lattice/internal/beagle"
	"lattice/internal/phylo"
	"lattice/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "garli:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataPath   = flag.String("data", "", "input alignment (FASTA or PHYLIP)")
		format     = flag.String("format", "fasta", "input format: fasta, phylip, or nexus")
		datatype   = flag.String("datatype", "nucleotide", "nucleotide, aminoacid, or codon")
		model      = flag.String("model", "GTR", "substitution model (JC69, K80, HKY85, GTR, poisson, empirical, GY94)")
		ratehet    = flag.String("ratehet", "gamma", "rate heterogeneity: none, gamma, gamma+inv")
		numCats    = flag.Int("numratecats", 4, "discrete gamma categories")
		alpha      = flag.Float64("alpha", 0.5, "gamma shape")
		pinv       = flag.Float64("pinv", 0.2, "proportion invariant (gamma+inv)")
		searchReps = flag.Int("searchreps", 1, "independent search replicates")
		streef     = flag.String("streefname", "stepwise", "starting tree: random, stepwise, user")
		userTree   = flag.String("usertree", "", "Newick file with the user starting tree (streefname=user)")
		attach     = flag.Int("attachmentspertaxon", 25, "stepwise attachment points per taxon")
		bootstrap  = flag.Int("bootstrap", 0, "bootstrap replicates (0 = best-tree search only)")
		gens       = flag.Int("generations", 500, "maximum GA generations per replicate")
		engine     = flag.String("engine", "beagle", "likelihood engine: reference or beagle (incremental)")
		workers    = flag.Int("workers", 1, "parallel evaluation workers (engines); results are seed-deterministic for any count")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "garli", "output file prefix")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		return fmt.Errorf("-data is required")
	}

	dt, err := phylo.ParseDataType(*datatype)
	if err != nil {
		return err
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var al *phylo.Alignment
	switch strings.ToLower(*format) {
	case "fasta":
		al, err = phylo.ParseFASTA(f, dt)
	case "phylip":
		al, err = phylo.ParsePHYLIP(f, dt)
	case "nexus":
		var nf *phylo.NexusFile
		nf, err = phylo.ParseNEXUS(f)
		if err == nil {
			if nf.Alignment == nil {
				return fmt.Errorf("NEXUS file has no data matrix")
			}
			al = nf.Alignment
			// The NEXUS FORMAT block overrides -datatype.
			dt = al.Type
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if err := al.Validate(); err != nil {
		return fmt.Errorf("validation mode: %w", err)
	}
	fmt.Printf("alignment: %d taxa × %d characters (%s)\n", al.NumTaxa(), al.Length(), dt)

	subst, err := buildModel(dt, *model)
	if err != nil {
		return err
	}
	het, err := phylo.ParseRateHetKind(*ratehet)
	if err != nil {
		return err
	}
	rates, err := phylo.NewSiteRates(het, *alpha, *pinv, *numCats)
	if err != nil {
		return err
	}
	start, err := phylo.ParseStartingTreeKind(*streef)
	if err != nil {
		return err
	}
	pd, err := al.Compile()
	if err != nil {
		return err
	}
	fmt.Printf("compiled: %d unique site patterns\n", pd.NumPatterns())

	cfg := phylo.DefaultSearchConfig()
	cfg.SearchReps = *searchReps
	cfg.StartingTree = start
	cfg.AttachmentsPerTaxon = *attach
	cfg.MaxGenerations = *gens
	if start == phylo.StartUser {
		if *userTree == "" {
			return fmt.Errorf("-streefname user requires -usertree")
		}
		nw, err := os.ReadFile(*userTree)
		if err != nil {
			return err
		}
		idx := map[string]int{}
		for i, n := range al.Names {
			idx[n] = i
		}
		tr, err := phylo.ParseNewick(strings.TrimSpace(string(nw)), idx)
		if err != nil {
			return fmt.Errorf("user starting tree: %w", err)
		}
		cfg.UserTree = tr
	}

	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}
	rng := sim.NewRNG(*seed)
	var res *phylo.SearchResult
	if *workers > 1 {
		pool, err := phylo.NewEvaluatorPool(*workers, func() (phylo.Evaluator, error) {
			return engineFor(*engine, pd, subst, rates)
		})
		if err != nil {
			return err
		}
		res, err = phylo.SearchParallel(pool, al.Names, cfg, rng.Stream("search"))
		if err != nil {
			return err
		}
	} else {
		ev, err := engineFor(*engine, pd, subst, rates)
		if err != nil {
			return err
		}
		res, err = phylo.SearchWith(ev, al.Names, cfg, rng.Stream("search"))
		if err != nil {
			return err
		}
	}
	fmt.Printf("best tree: lnL = %.4f (%d generations, %d evaluations, %.3g cell updates, engine=%s, workers=%d)\n",
		res.BestLogL, res.Generations, res.Evaluations, res.Work, strings.ToLower(*engine), *workers)
	if err := writeFile(*out+".best.tre", res.BestTree.Newick()+"\n"); err != nil {
		return err
	}

	if *bootstrap > 0 {
		fmt.Printf("bootstrapping: %d replicates\n", *bootstrap)
		var trees []*phylo.Tree
		for i := 0; i < *bootstrap; i++ {
			bs := pd.Bootstrap(rng.Float64)
			// Each bootstrap replicate resamples the data, so it gets
			// its own engine over the resampled patterns.
			bev, err := engineFor(*engine, bs, subst, rates)
			if err != nil {
				return err
			}
			r, err := phylo.SearchWith(bev, al.Names, cfg, rng.Stream(fmt.Sprintf("bs%d", i)))
			if err != nil {
				return err
			}
			trees = append(trees, r.BestTree)
			if (i+1)%10 == 0 {
				fmt.Printf("  %d/%d done\n", i+1, *bootstrap)
			}
		}
		sup := phylo.NewSplitSupport(trees)
		cons, err := sup.MajorityRuleConsensus(al.Names)
		if err != nil {
			return err
		}
		if err := writeFile(*out+".boot.con", cons.Newick()+"\n"); err != nil {
			return err
		}
		fmt.Printf("majority-rule consensus written to %s.boot.con\n", *out)
	}
	fmt.Printf("results written with prefix %s\n", *out)
	return nil
}

// engineFor builds the selected likelihood engine over the data: the
// reference full-recompute implementation, or the optimized beagle
// backend with incremental re-evaluation.
func engineFor(name string, pd *phylo.PatternData, m *phylo.Model, r *phylo.SiteRates) (phylo.Evaluator, error) {
	switch strings.ToLower(name) {
	case "reference":
		return phylo.NewLikelihood(pd, m, r)
	case "beagle":
		return beagle.New(pd, m, r)
	default:
		return nil, fmt.Errorf("unknown engine %q (want reference or beagle)", name)
	}
}

func buildModel(dt phylo.DataType, name string) (*phylo.Model, error) {
	switch dt {
	case phylo.Nucleotide:
		return phylo.NucModelSpec{
			Name:  name,
			Kappa: 2.5,
			Rates: [6]float64{1.2, 3.5, 0.9, 1.1, 4.2, 1},
			Freqs: []float64{0.3, 0.2, 0.2, 0.3},
		}.Build()
	case phylo.AminoAcid:
		return phylo.AAModelSpec{Name: name}.Build()
	default:
		return phylo.CodonModelSpec{Kappa: 2.0, Omega: 0.4}.Build()
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
