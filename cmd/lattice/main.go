// Command lattice boots the full grid system — the resource
// federation, MDS, meta-scheduler, runtime estimator, GSBL services —
// and serves the science portal over HTTP while virtual grid time
// advances at a configurable acceleration.
//
// Usage:
//
//	lattice -addr :8080 -accel 60   # 1 wall minute = 1 grid hour
//
// Then open http://localhost:8080/garli/create, upload a FASTA file,
// and watch your batch at /batch/<id>?format=json. Metrics are at
// /metrics (text exposition) and per-batch traces at /trace/<id>;
// pass -metrics-addr to serve those two endpoints on a separate
// listener as well.
//
// The -smoke flag boots the grid on a loopback port, pushes a small
// workload through it, scrapes /metrics and /trace over real HTTP,
// and exits non-zero unless the exposition parses and shows the
// workload — the CI boot check.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"lattice/internal/admit"
	"lattice/internal/core"
	"lattice/internal/dag"
	"lattice/internal/faults"
	"lattice/internal/gsbl"
	"lattice/internal/obs"
	"lattice/internal/shard"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lattice:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "portal listen address")
		metricsAddr = flag.String("metrics-addr", "", "optional separate listen address for /metrics and /trace/")
		accel       = flag.Float64("accel", 60, "grid-time acceleration (virtual seconds per wall second)")
		seed        = flag.Int64("seed", 1, "random seed for the simulated federation")
		train       = flag.Int("train", 150, "runtime-model training jobs")
		smoke       = flag.Bool("smoke", false, "boot, run a small workload, self-scrape /metrics, and exit")
		withFaults  = flag.Bool("faults", false, "run under the default hostile fault schedule (outages, flaps, churn, lost results)")
		durable     = flag.String("durable", "", "directory for crash-consistent state (WAL + snapshots); on boot, existing state there is recovered")
		workflow    = flag.Bool("workflow", false, "submit the four-stage standard-analysis demo workflow at boot; watch it at /workflow/<id>")
		shards      = flag.Int("shards", 1, "coordinator shard count; above 1 boots a sharded cluster behind a deterministic front router")
		share       = flag.String("share", "partition", "grid sharing mode under -shards: partition (static split) or lease (rotating leases)")
		withAdmit   = flag.Bool("admit", false, "enable overload protection: the serialized ingest door with per-user quotas, fair-share shedding (429 + Retry-After at the portal) and per-resource circuit breakers")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*seed)
	cfg.TrainingJobs = *train
	if *withFaults {
		cfg.Faults = core.DefaultFaultSchedule()
		cfg.Scheduler.StabilityAlpha = 0.2
	}
	if *withAdmit {
		// Admission control meters the ingest door, so -admit implies
		// the ingest model.
		cfg.Ingest = gsbl.IngestConfig{PerSubmissionSeconds: 1.0, PerReplicateSeconds: 0.25}
		cfg.Admit = admit.DefaultConfig()
		cfg.Scheduler.BreakerThreshold = 5
		fmt.Println("overload protection active: admission control at the ingest door, circuit breakers in the scheduler")
	}
	if *shards > 1 {
		return runCluster(cfg, *shards, *share, *durable, *withFaults, *smoke, *addr, *accel)
	}
	var lat *core.Lattice
	var err error
	if *durable != "" {
		cfg.Durable = *durable
		// Recover falls through to a fresh boot when the directory
		// holds no durable state yet.
		lat, err = core.Recover(*durable, cfg)
	} else {
		lat, err = core.New(cfg)
	}
	if err != nil {
		return err
	}
	if rep := lat.Recovery; rep != nil {
		fmt.Printf("recovered from %s: %d records verified (snapshot at seq %d, %d log records, %d inputs replayed), resumed at t=%.0fs",
			*durable, rep.Records, rep.SnapshotSeq, rep.TailRecords, rep.Inputs, float64(rep.Watermark))
		if rep.TornTail {
			fmt.Print(" — torn final log record dropped")
		}
		fmt.Println()
	} else if *durable != "" {
		fmt.Printf("durable state: write-ahead log at %s\n", *durable)
	}
	if *withFaults {
		fmt.Println("fault injection active: default hostile schedule armed (see /metrics lattice_faults_injected_total)")
	}
	if *smoke {
		return runSmoke(lat)
	}
	if *workflow {
		wf := dag.StandardAnalysis("standard-analysis", "demo@example.edu", *seed,
			workload.NewGenerator(*seed).Submission().Spec, 8, 100)
		run, err := lat.SubmitWorkflow(wf)
		if err != nil {
			return fmt.Errorf("demo workflow: %w", err)
		}
		fmt.Printf("demo workflow %s submitted: %d stages (model-selection → search ∥ bootstrap → consensus); status at /workflow/%s\n",
			run.ID, len(run.Order), run.ID)
	}
	fmt.Printf("The Lattice Project — grid up with %d resources, %d CPU cores visible\n",
		len(lat.ResourceNames()), lat.TotalCores())
	for _, name := range lat.ResourceNames() {
		r, _ := lat.Resource(name)
		info := r.Info()
		fmt.Printf("  %-18s %-7s %4d CPUs  stable=%-5v platforms=%v\n",
			info.Name, info.Kind, info.TotalCPUs, info.Stable, info.Platforms)
	}
	if lat.Estimator != nil {
		if st, err := lat.Estimator.Stats(); err == nil {
			fmt.Printf("runtime model: %d jobs, %.1f%% variance explained\n",
				lat.Estimator.NumObservations(), st.PctVarExplained)
		}
	}

	// Advance virtual time continuously.
	//lint:allow goroleak -- real-time pump lives for the whole process; the OS reaps it at exit
	go func() {
		const tick = 250 * time.Millisecond
		//lint:allow determinism -- the real-time bridge itself: wall ticks drive virtual time only here, outside any digested path
		for range time.Tick(tick) {
			lat.Portal.Pump(sim.Duration(*accel * tick.Seconds()))
		}
	}()

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics listening on %s\n", ln.Addr())
		//lint:allow goroleak -- metrics listener serves until process exit; no shutdown path exists by design
		go func() {
			if err := http.Serve(ln, metricsMux(lat)); err != nil {
				fmt.Fprintln(os.Stderr, "lattice: metrics server:", err)
			}
		}()
	}
	fmt.Printf("portal listening on %s (×%.0f time acceleration)\n", *addr, *accel)
	return http.ListenAndServe(*addr, lat.Portal.Handler())
}

// runCluster boots a sharded deployment: N coordinator shards behind
// the deterministic front router, each with its own engine, metrics
// hub and (under -durable) WAL directory root/shard<k>.
func runCluster(base core.Config, shards int, share, durable string, withFaults, smoke bool, addr string, accel float64) error {
	if smoke {
		return fmt.Errorf("-smoke checks the flat deployment; run it without -shards")
	}
	ccfg := core.ClusterConfig{
		Shards:      shards,
		Share:       shard.ShareMode(share),
		Base:        base,
		DurableRoot: durable,
	}
	// Fault schedules are per shard under a cluster; the template must
	// stay clean.
	ccfg.Base.Faults = nil
	if withFaults {
		ccfg.ShardFaults = func(int) *faults.Schedule { return core.DefaultFaultSchedule() }
	}
	c, err := core.NewCluster(ccfg)
	if err != nil {
		return err
	}
	if durable != "" {
		fmt.Printf("durable state: per-shard write-ahead logs under %s/shard<k>\n", durable)
	}
	fmt.Printf("The Lattice Project — %d coordinator shards (%s sharing) behind the front router\n",
		c.Size(), ccfg.Share)
	for k, lat := range c.Shards {
		fmt.Printf("  shard %d: %d resources, %d CPU cores visible\n",
			k, len(lat.ResourceNames()), lat.TotalCores())
	}

	// Advance every shard's virtual clock continuously.
	//lint:allow goroleak -- real-time pump lives for the whole process; the OS reaps it at exit
	go func() {
		const tick = 250 * time.Millisecond
		//lint:allow determinism -- the real-time bridge itself: wall ticks drive virtual time only here, outside any digested path
		for range time.Tick(tick) {
			c.Pump(sim.Duration(accel * tick.Seconds()))
		}
	}()
	fmt.Printf("front router listening on %s (×%.0f time acceleration)\n", addr, accel)
	return http.ListenAndServe(addr, c.Handler())
}

// metricsMux exposes only the observability endpoints — what a
// scrape-only listener should serve.
func metricsMux(lat *core.Lattice) *http.ServeMux {
	portal := lat.Portal.Handler()
	mux := http.NewServeMux()
	mux.Handle("/metrics", portal)
	mux.Handle("/trace/", portal)
	return mux
}

// runSmoke is the CI boot check: serve the portal on a loopback port,
// run a small fixed-seed workload to completion, then scrape /metrics
// and /trace/ over HTTP and verify the exposition parses and reflects
// the workload.
func runSmoke(lat *core.Lattice) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: lat.Portal.Handler()}
	//lint:allow goroleak -- joined by the deferred srv.Close below: Serve returns ErrServerClosed and the goroutine exits
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "lattice: smoke server:", err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: portal listening on %s\n", ln.Addr())

	sub := workload.NewGenerator(7).Submission()
	sub.Replicates = 10
	sub.UserEmail = "smoke@example.edu"
	batch, err := lat.SubmitSubmission(sub)
	if err != nil {
		return fmt.Errorf("smoke submit: %w", err)
	}
	for i := 0; i < 400; i++ {
		lat.Portal.Pump(6 * sim.Hour)
		if st, err := lat.Service.Status(batch.ID); err == nil && st.Done {
			break
		}
	}
	st, err := lat.Service.Status(batch.ID)
	if err != nil {
		return err
	}
	if !st.Done {
		return fmt.Errorf("smoke: batch %s not done after pumping (%d/%d terminal)",
			batch.ID, st.Completed+st.Failed, st.Total)
	}

	body, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := obs.ParseExposition(string(body))
	if err != nil {
		return fmt.Errorf("smoke: /metrics unparseable: %w", err)
	}
	if len(metrics) == 0 {
		return fmt.Errorf("smoke: /metrics exposition is empty")
	}
	for _, key := range []string{
		"lattice_sched_jobs_submitted_total",
		"lattice_sched_jobs_completed_total",
	} {
		if metrics[key] <= 0 {
			return fmt.Errorf("smoke: metric %s is %g, want > 0", key, metrics[key])
		}
	}
	if _, err := get(base + "/trace/" + batch.ID); err != nil {
		return err
	}
	fmt.Printf("smoke: OK — %d series, %d/%d jobs completed, journal digest %.12s…\n",
		len(metrics), st.Completed, st.Total, lat.Obs.Journal.Digest())
	return nil
}

// get fetches a URL and returns its body, treating any non-200 status
// as an error.
func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s (%.120s)", url, resp.Status, body)
	}
	return body, nil
}
