// Command lattice boots the full grid system — the resource
// federation, MDS, meta-scheduler, runtime estimator, GSBL services —
// and serves the science portal over HTTP while virtual grid time
// advances at a configurable acceleration.
//
// Usage:
//
//	lattice -addr :8080 -accel 60   # 1 wall minute = 1 grid hour
//
// Then open http://localhost:8080/garli/create, upload a FASTA file,
// and watch your batch at /batch/<id>?format=json.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"lattice/internal/core"
	"lattice/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lattice:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr  = flag.String("addr", ":8080", "portal listen address")
		accel = flag.Float64("accel", 60, "grid-time acceleration (virtual seconds per wall second)")
		seed  = flag.Int64("seed", 1, "random seed for the simulated federation")
		train = flag.Int("train", 150, "runtime-model training jobs")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*seed)
	cfg.TrainingJobs = *train
	lat, err := core.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("The Lattice Project — grid up with %d resources, %d CPU cores visible\n",
		len(lat.ResourceNames()), lat.TotalCores())
	for _, name := range lat.ResourceNames() {
		r, _ := lat.Resource(name)
		info := r.Info()
		fmt.Printf("  %-18s %-7s %4d CPUs  stable=%-5v platforms=%v\n",
			info.Name, info.Kind, info.TotalCPUs, info.Stable, info.Platforms)
	}
	if lat.Estimator != nil {
		if st, err := lat.Estimator.Stats(); err == nil {
			fmt.Printf("runtime model: %d jobs, %.1f%% variance explained\n",
				lat.Estimator.NumObservations(), st.PctVarExplained)
		}
	}

	// Advance virtual time continuously.
	go func() {
		const tick = 250 * time.Millisecond
		for range time.Tick(tick) {
			lat.Portal.Pump(sim.Duration(*accel * tick.Seconds()))
		}
	}()

	fmt.Printf("portal listening on %s (×%.0f time acceleration)\n", *addr, *accel)
	return http.ListenAndServe(*addr, lat.Portal.Handler())
}
