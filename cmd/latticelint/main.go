// Command latticelint runs the project's static-analysis suite: five
// per-package syntactic analyzers (determinism, errdrop, floatcmp,
// syncmisuse, deadassign) plus three whole-program dataflow analyzers
// (lockorder, goroleak, taintdet) that enforce the reproducibility,
// error-handling and concurrency discipline the paper reproduction
// depends on. It is built from the standard library alone and works
// offline.
//
// Usage:
//
//	latticelint [flags] [packages]
//
// Packages default to ./... (every package in the module). A package
// may be given as ./... or as a directory path. Exit status is 0 when
// the tree has no unsuppressed findings, 1 when unsuppressed findings
// are reported, and 2 when the tool itself fails (parse or type-check
// error, bad flags).
//
// Flags:
//
//	-json             emit all findings (suppressed included, with a
//	                  "suppressed" field) as a JSON array
//	-enable  a,b,...  run only the named analyzers
//	-disable a,b,...  run all but the named analyzers
//	-tests            also analyze in-package _test.go files
//	-list             print the analyzer suite with scopes and exit
//
// Findings are suppressed with an in-source escape hatch, placed on
// the flagged line or alone on the line directly above:
//
//	//lint:allow determinism -- reason the wall clock is safe here
//
// Suppressed findings still appear in -json output marked
// "suppressed": true, so the escape hatches stay auditable; they do
// not affect the exit status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lattice/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("latticelint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (suppressed included)")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	list := fs.Bool("list", false, "list analyzers with scopes and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			kind := "package"
			if a.RunProgram != nil {
				kind = "program"
			}
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			if a.Tests {
				scope += " (+tests)"
			}
			fmt.Fprintf(os.Stdout, "%-12s %-8s %-32s %s\n", a.Name, kind, scope, firstLine(a.Doc))
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latticelint:", err)
		return 2
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "latticelint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latticelint:", err)
		return 2
	}
	loader.IncludeTests = *tests

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "latticelint:", err)
				return 2
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(strings.TrimSuffix(pat, "/"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "latticelint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	var findings []lint.Finding
	for _, pkg := range pkgs {
		findings = append(findings, lint.RunAnalyzers(pkg, analyzers)...)
	}
	// The dataflow analyzers see every selected package at once, so
	// cross-package summaries (lock orders, sink parameters) resolve.
	findings = append(findings, lint.RunWholeProgram(lint.NewProgram(pkgs), analyzers)...)
	// Report paths relative to the module root for stable output.
	for i := range findings {
		if rel, err := filepath.Rel(modRoot, findings[i].File); err == nil {
			findings[i].File = rel
		}
	}
	open := lint.Unsuppressed(findings)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "latticelint:", err)
			return 2
		}
	} else {
		for _, f := range open {
			fmt.Fprintln(os.Stdout, f)
		}
	}
	if len(open) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "latticelint: %d finding(s)\n", len(open))
		}
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable / -disable to the full suite.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	if enable != "" {
		var out []*lint.Analyzer
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			out = append(out, a)
		}
		return out, nil
	}
	skip := map[string]bool{}
	if disable != "" {
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if lint.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			skip[name] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
