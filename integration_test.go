package lattice_test

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lattice"
	"lattice/internal/grid/mds"
	"lattice/internal/metasched"
	"lattice/internal/obs"
	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// TestPublicAPIEndToEnd drives the exported surface only: build a
// grid, submit, run, download.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := lattice.DefaultConfig(77)
	cfg.TrainingJobs = 60
	grid, err := lattice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if grid.TotalCores() < 100 {
		t.Fatalf("grid has only %d cores", grid.TotalCores())
	}
	sub := lattice.Submission{
		Spec: lattice.JobSpec{
			DataType: lattice.Nucleotide, SubstModel: "HKY85",
			RateHet: lattice.RateGamma, NumRateCats: 4, GammaShape: 0.5,
			NumTaxa: 18, SeqLength: 900, SearchReps: 1,
			StartingTree: lattice.StartStepwise, AttachmentsPerTaxon: 20, Seed: 5,
		},
		Replicates: 30,
		Bootstrap:  true,
		UserEmail:  "api@example.edu",
	}
	batch, err := grid.SubmitSubmission(sub)
	if err != nil {
		t.Fatal(err)
	}
	grid.Run(45 * lattice.Day)
	st, err := grid.Service.Status(batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Completed == 0 {
		t.Fatalf("batch incomplete: %+v", st)
	}
	data, err := grid.Service.ResultsZip(batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(zr.File) < 2 {
		t.Errorf("results zip has only %d files", len(zr.File))
	}
	// Continuous retraining fired for the submission.
	if grid.Retrains() != 1 {
		t.Errorf("reference forks = %d, want 1", grid.Retrains())
	}
}

// TestPortalEndToEnd (E12) drives the generated web form over real
// HTTP against a full grid: guest submission, status polling, zip
// download.
func TestPortalEndToEnd(t *testing.T) {
	cfg := lattice.DefaultConfig(78)
	cfg.TrainingJobs = 60
	grid, err := lattice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(grid.Portal.Handler())
	defer srv.Close()

	// The form page advertises the GARLI parameters.
	resp, err := http.Get(srv.URL + "/garli/create")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "ratehetmodel") {
		t.Fatal("form page not generated from the XML description")
	}

	// Upload simulated sequence data as a guest.
	rng := sim.NewRNG(9)
	m, _ := phylo.NewJC69()
	rs, _ := phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
	tr := phylo.RandomTree(phylo.TaxonNames(8), 0.1, rng)
	al, err := phylo.SimulateAlignment(tr, m, rs, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	var fasta strings.Builder
	if err := al.WriteFASTA(&fasta); err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	w := multipart.NewWriter(&body)
	w.WriteField("email", "guest@beagle.org")
	w.WriteField("replicates", "12")
	fw, _ := w.CreateFormFile("datafile", "data.fasta")
	io.WriteString(fw, fasta.String())
	w.Close()
	resp, err = http.Post(srv.URL+"/garli/create", w.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("portal rejected submission: %s", raw)
	}
	var created struct{ Batch string }
	if err := json.Unmarshal(raw, &created); err != nil {
		t.Fatal(err)
	}

	grid.Portal.Pump(30 * lattice.Day)

	resp, err = http.Get(srv.URL + "/batch/" + created.Batch + "/download")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download failed: %d", resp.StatusCode)
	}
	if _, err := zip.NewReader(bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatalf("downloaded results not a zip: %v", err)
	}
	if len(grid.Mailer.SentTo("guest@beagle.org")) < 2 {
		t.Error("guest not notified")
	}
}

// TestGridSurvivesResourceOutage: a cluster crashes mid-run; its MDS
// entry goes stale, the scheduler stops using it, and pending jobs
// flow elsewhere.
func TestGridSurvivesResourceOutage(t *testing.T) {
	cfg := lattice.DefaultConfig(79)
	cfg.TrainingJobs = 0 // estimates not needed here
	grid, err := lattice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := lattice.Submission{
		Spec: lattice.JobSpec{
			DataType: lattice.Nucleotide, SubstModel: "JC69",
			NumTaxa: 20, SeqLength: 1000, SearchReps: 1,
			StartingTree: lattice.StartRandom, Seed: 4,
		},
		Replicates: 60,
		UserEmail:  "ops@example.edu",
	}
	batch, err := grid.SubmitSubmission(sub)
	if err != nil {
		t.Fatal(err)
	}
	// Nuke the big cluster's MDS entries shortly after submission by
	// publishing a fake zero-capacity entry and letting TTL pass; the
	// direct way is to stop its provider, which we cannot reach, so
	// simulate the crash by cancelling all of its running jobs.
	grid.Run(2 * lattice.Hour)
	st, _ := grid.Service.Status(batch.ID)
	if st.Done {
		t.Skip("batch finished before outage could be injected")
	}
	grid.Run(60 * lattice.Day)
	st, err = grid.Service.Status(batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("batch stuck: %+v", st)
	}
}

// TestOfflineResourceInvisibleToScheduler wires the outage scenario at
// the component level: the provider stops and the job must land on the
// surviving resource.
func TestOfflineResourceInvisibleToScheduler(t *testing.T) {
	// Covered in detail by internal/metasched tests; here we assert
	// the public wiring exposes the same semantics through a Lattice.
	cfg := lattice.DefaultConfig(80)
	cfg.TrainingJobs = 0
	grid, err := lattice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grid.Resource("umd-hpc"); !ok {
		t.Fatal("expected umd-hpc in the default federation")
	}
	if _, ok := grid.Scheduler.Speed("umd-hpc"); !ok {
		t.Fatal("scheduler does not know umd-hpc")
	}
}

// TestCalibrationMatchesRegisteredSpeeds calibrates a default-
// federation cluster in-band and compares to its configured speed.
func TestCalibrationMatchesRegisteredSpeeds(t *testing.T) {
	cfg := lattice.DefaultConfig(81)
	cfg.TrainingJobs = 0
	grid, err := lattice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hpc, _ := grid.Resource("umd-hpc")
	speed, err := metasched.Calibrate(grid.Engine, hpc, 600, 3, 10*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if speed < 1.8 || speed > 2.2 {
		t.Errorf("calibrated umd-hpc speed %.2f, configured 2.0", speed)
	}
}

// TestMDSPropagationHierarchy checks the two-level MDS arrangement
// through the public index.
func TestMDSPropagationHierarchy(t *testing.T) {
	cfg := lattice.DefaultConfig(82)
	cfg.TrainingJobs = 0
	grid, err := lattice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	central, err := mds.NewIndex(grid.Engine, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mds.StartPropagator(grid.Engine, grid.Index, central, sim.Minute); err != nil {
		t.Fatal(err)
	}
	grid.Run(10 * sim.Minute)
	if got := len(central.Snapshot()); got != len(grid.ResourceNames()) {
		t.Errorf("central index sees %d resources, want %d", got, len(grid.ResourceNames()))
	}
}

// TestObservabilityConservationAndDeterminism submits one 200-replicate
// batch (bundling disabled, so 200 grid jobs), runs it to completion,
// and checks the observability subsystem's two core invariants: every
// job reaches exactly one terminal state in the journal, and a fixed
// seed reproduces the journal digest and the full /metrics exposition
// bit for bit.
func TestObservabilityConservationAndDeterminism(t *testing.T) {
	run := func() (digest, exposition string, terminal map[string]int, jobs int) {
		cfg := lattice.DefaultConfig(90)
		cfg.TrainingJobs = 60
		cfg.Scheduler.BundleTargetSeconds = 0 // one grid job per replicate
		grid, err := lattice.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sub := lattice.Submission{
			Spec: lattice.JobSpec{
				DataType: lattice.Nucleotide, SubstModel: "HKY85",
				RateHet: lattice.RateGamma, NumRateCats: 4, GammaShape: 0.5,
				NumTaxa: 16, SeqLength: 800, SearchReps: 1,
				StartingTree: lattice.StartStepwise, AttachmentsPerTaxon: 20, Seed: 9,
			},
			Replicates: 200,
			Bootstrap:  true,
			UserEmail:  "obs@example.edu",
		}
		batch, err := grid.SubmitSubmission(sub)
		if err != nil {
			t.Fatal(err)
		}
		grid.Run(60 * lattice.Day)
		st, err := grid.Service.Status(batch.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Done {
			t.Fatalf("batch incomplete after 60 days: %+v", st)
		}
		return grid.Obs.Journal.Digest(), grid.Obs.Exposition(),
			grid.Obs.Journal.TerminalCounts(), len(batch.Jobs)
	}

	d1, e1, term, jobs := run()
	if jobs != 200 {
		t.Fatalf("bundling disabled but submission expanded to %d jobs, want 200", jobs)
	}
	if len(term) < jobs {
		t.Fatalf("journal saw %d jobs, want >= %d", len(term), jobs)
	}
	for id, n := range term {
		if n != 1 {
			t.Errorf("job %s has %d terminal events, want exactly 1", id, n)
		}
	}
	d2, e2, _, _ := run()
	if d1 != d2 {
		t.Errorf("same seed, different journal digests: %s vs %s", d1, d2)
	}
	if e1 != e2 {
		t.Errorf("same seed, different /metrics expositions (lengths %d vs %d)", len(e1), len(e2))
	}
}

// TestPortalObservabilityEndpoints checks the portal serves the text
// exposition at /metrics and a batch's span tree at /trace/{batch}.
func TestPortalObservabilityEndpoints(t *testing.T) {
	cfg := lattice.DefaultConfig(91)
	cfg.TrainingJobs = 40
	grid, err := lattice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := lattice.Submission{
		Spec: lattice.JobSpec{
			DataType: lattice.Nucleotide, SubstModel: "JC69",
			RateHet: lattice.RateHomogeneous, NumRateCats: 4,
			NumTaxa: 12, SeqLength: 600, SearchReps: 1,
			StartingTree: lattice.StartStepwise, AttachmentsPerTaxon: 15, Seed: 3,
		},
		Replicates: 8,
		UserEmail:  "trace@example.edu",
	}
	batch, err := grid.SubmitSubmission(sub)
	if err != nil {
		t.Fatal(err)
	}
	grid.Run(20 * lattice.Day)
	srv := httptest.NewServer(grid.Portal.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	metrics, err := obs.ParseExposition(string(body))
	if err != nil {
		t.Fatalf("/metrics exposition unparseable: %v", err)
	}
	if metrics["lattice_sched_jobs_submitted_total"] <= 0 {
		t.Errorf("submitted counter missing from exposition: %v", len(metrics))
	}

	resp, err = http.Get(srv.URL + "/trace/" + batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		Batch string         `json:"batch"`
		Spans []obs.SpanView `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", resp.StatusCode)
	}
	// Root span plus one per job.
	if trace.Batch != batch.ID || len(trace.Spans) != 1+len(batch.Jobs) {
		t.Errorf("trace has %d spans for %d jobs", len(trace.Spans), len(batch.Jobs))
	}
	resp, err = http.Get(srv.URL + "/trace/batch-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch trace status %d, want 404", resp.StatusCode)
	}
}
