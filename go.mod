module lattice

go 1.22
